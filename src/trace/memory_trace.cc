#include "trace/memory_trace.hh"

#include <algorithm>

namespace wbsim
{

MemoryTrace::MemoryTrace(std::vector<TraceRecord> records, std::string name)
    : records_(std::move(records)), name_(std::move(name))
{
}

void
MemoryTrace::append(const TraceRecord &record)
{
    records_.push_back(record);
}

MemoryTrace
MemoryTrace::capture(TraceSource &source, std::string name)
{
    MemoryTrace trace({}, std::move(name));
    TraceRecord rec;
    while (source.next(rec))
        trace.append(rec);
    return trace;
}

bool
MemoryTrace::next(TraceRecord &record)
{
    if (cursor_ >= records_.size())
        return false;
    record = records_[cursor_++];
    return true;
}

std::size_t
MemoryTrace::nextBatch(TraceRecord *out, std::size_t max)
{
    std::size_t n = std::min(max, records_.size() - cursor_);
    std::copy_n(records_.begin()
                    + static_cast<std::ptrdiff_t>(cursor_),
                n, out);
    cursor_ += n;
    return n;
}

TruncatedSource::TruncatedSource(TraceSource &inner, Count limit)
    : inner_(inner), limit_(limit)
{
}

bool
TruncatedSource::next(TraceRecord &record)
{
    if (taken_ >= limit_)
        return false;
    if (!inner_.next(record))
        return false;
    ++taken_;
    return true;
}

void
TruncatedSource::reset()
{
    inner_.reset();
    taken_ = 0;
}

std::string
TruncatedSource::name() const
{
    return inner_.name();
}

ConcatSource::ConcatSource(std::vector<TraceSource *> parts,
                           std::string name)
    : parts_(std::move(parts)), name_(std::move(name))
{
}

bool
ConcatSource::next(TraceRecord &record)
{
    while (current_ < parts_.size()) {
        if (parts_[current_]->next(record))
            return true;
        ++current_;
    }
    return false;
}

void
ConcatSource::reset()
{
    for (auto *part : parts_)
        part->reset();
    current_ = 0;
}

} // namespace wbsim
