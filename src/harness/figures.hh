/**
 * @file
 * Factories for every figure and ablation experiment (DESIGN.md §4).
 * Each returns an Experiment whose variants mirror the bars of the
 * corresponding paper figure.
 */

#ifndef WBSIM_HARNESS_FIGURES_HH
#define WBSIM_HARNESS_FIGURES_HH

#include "harness/experiment.hh"

namespace wbsim::figures
{

/** The paper's baseline machine (Tables 1 and 2): 8K L1, perfect
 *  I-cache and L2, 6-cycle L2, 4-deep retire-at-2 flush-full WB. */
MachineConfig baselineMachine();

/** A "baseline+" machine: 12-deep, retire-at-2, flush-full. */
MachineConfig baselinePlusMachine();

Experiment figure03(); //!< baseline stall breakdown
Experiment figure04(); //!< depth 2..12
Experiment figure05(); //!< retire-at-2..10 @ 12-deep flush-full
Experiment figure06(); //!< hazard policies @ 12-deep retire-at-10
Experiment figure07(); //!< hazard policies @ 12-deep retire-at-8
Experiment figure08(); //!< retirement sweep, flush-partial, headroom 6
Experiment figure09(); //!< retirement sweep, flush-item-only, headroom 6
Experiment figure10(); //!< L1 size 8K/16K/32K
Experiment figure11(); //!< L2 latency 3/6/10
Experiment figure12(); //!< perfect vs 1M/512K/128K L2
Experiment figure13(); //!< memory latency 25/50

Experiment ablationFixedRate();     //!< A1: occupancy vs fixed-rate
Experiment ablationAgeTimeout();    //!< A2: 21064/21164 timeouts
Experiment ablationWritePriority(); //!< A3: UltraSPARC arbitration
Experiment ablationNonCoalescing(); //!< A4: 1-word entries
Experiment ablationWriteCache();    //!< A5: Jouppi write cache
Experiment ablationDatapath();      //!< A6: narrow L2 datapath
Experiment ablationIssueWidth();    //!< A7: superscalar store density
Experiment ablationBubbles();       //!< A8: pipeline bubbles
Experiment ablationICache();        //!< A9: real instruction cache
Experiment ablationWbHitCost();     //!< A10: read-from-WB hit cost
Experiment ablationEntryWidth();    //!< A11: entry width (Table 2)
Experiment ablationRetireOrder();   //!< A13: retirement order (Table 2)
Experiment ablationWriteAllocate(); //!< A14: L1 write-miss policy
Experiment ablationPacing();        //!< A15: bursty vs paced drain

} // namespace wbsim::figures

#endif // WBSIM_HARNESS_FIGURES_HH
