/**
 * @file
 * Named write-buffer presets for the real machines the paper uses
 * as reference points throughout (§2.2, Table 2 and the citations
 * to the 21064/21164 hardware reference manuals and the
 * UltraSPARC-I paper).
 */

#ifndef WBSIM_HARNESS_MACHINES_HH
#define WBSIM_HARNESS_MACHINES_HH

#include <string>
#include <vector>

#include "sim/machine_config.hh"

namespace wbsim::machines
{

/**
 * DEC Alpha 21064: 4-deep, cache-line-wide, retire-at-2,
 * flush-full, 256-cycle age timeout on lingering entries.
 */
MachineConfig alpha21064();

/**
 * DEC Alpha 21164: 6-deep, retire-at-2, flush-partial, 64-cycle age
 * timeout.
 */
MachineConfig alpha21164();

/**
 * SUN UltraSPARC-I style: 8-deep, read-bypassing until the buffer
 * nears full, at which point writes get priority for L2.
 */
MachineConfig ultraSparc();

/**
 * The paper's §3.5 recommendation: 12-deep, retire-at-8 (4-6
 * entries of headroom), read-from-WB.
 */
MachineConfig paperRecommendation();

/** One named preset. */
struct NamedMachine
{
    std::string name;
    MachineConfig machine;
};

/** All presets, in the order above. */
std::vector<NamedMachine> allMachines();

} // namespace wbsim::machines

#endif // WBSIM_HARNESS_MACHINES_HH
