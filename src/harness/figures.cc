#include "harness/figures.hh"

#include <string>

namespace wbsim::figures
{

namespace
{

/** Variant helper. */
ConfigVariant
variant(std::string label, const MachineConfig &machine)
{
    return ConfigVariant{std::move(label), machine};
}

MachineConfig
withHazard(MachineConfig machine, LoadHazardPolicy policy)
{
    machine.writeBuffer.hazardPolicy = policy;
    return machine;
}

} // namespace

MachineConfig
baselineMachine()
{
    MachineConfig machine; // defaults are the paper's baseline
    return machine;
}

MachineConfig
baselinePlusMachine()
{
    MachineConfig machine = baselineMachine();
    machine.writeBuffer.depth = 12;
    return machine;
}

Experiment
figure03()
{
    Experiment exp;
    exp.id = "fig03";
    exp.title = "Write-Buffer-Induced Stall Cycles, Base Model";
    exp.subtitle = "4-deep, retire-at-2, flush-full";
    exp.variants = {variant("baseline", baselineMachine())};
    return exp;
}

Experiment
figure04()
{
    Experiment exp;
    exp.id = "fig04";
    exp.title = "Stall Cycles as a Function of Depth";
    exp.subtitle = "retire-at-2, flush-full, depth = 2-12";
    for (unsigned depth : {2u, 4u, 6u, 8u, 10u, 12u}) {
        MachineConfig machine = baselineMachine();
        machine.writeBuffer.depth = depth;
        exp.variants.push_back(
            variant(std::to_string(depth) + "-deep", machine));
    }
    return exp;
}

Experiment
figure05()
{
    Experiment exp;
    exp.id = "fig05";
    exp.title = "Stall Cycles as a Function of Retirement Policy";
    exp.subtitle = "12-deep, flush-full, retire-at-2 thru 10";
    for (unsigned mark : {2u, 4u, 6u, 8u, 10u}) {
        MachineConfig machine = baselinePlusMachine();
        machine.writeBuffer.highWaterMark = mark;
        exp.variants.push_back(
            variant("retire-at-" + std::to_string(mark), machine));
    }
    return exp;
}

namespace
{

Experiment
hazardPolicyExperiment(const std::string &id, unsigned mark)
{
    Experiment exp;
    exp.id = id;
    exp.title = "Stalls as a Function of Load-Hazard Policy";
    exp.subtitle = "12-deep, retire-at-" + std::to_string(mark);
    exp.variants.push_back(variant("baseline+", baselinePlusMachine()));
    MachineConfig lazy = baselinePlusMachine();
    lazy.writeBuffer.highWaterMark = mark;
    exp.variants.push_back(
        variant("flush-full",
                withHazard(lazy, LoadHazardPolicy::FlushFull)));
    exp.variants.push_back(
        variant("flush-partial",
                withHazard(lazy, LoadHazardPolicy::FlushPartial)));
    exp.variants.push_back(
        variant("flush-item-only",
                withHazard(lazy, LoadHazardPolicy::FlushItemOnly)));
    exp.variants.push_back(
        variant("read-from-WB",
                withHazard(lazy, LoadHazardPolicy::ReadFromWB)));
    return exp;
}

Experiment
headroomSweepExperiment(const std::string &id, LoadHazardPolicy policy)
{
    Experiment exp;
    exp.id = id;
    exp.title = std::string("Stall Cycles as a Function of Retirement "
                            "Policy with ")
        + loadHazardPolicyName(policy);
    exp.subtitle = "retire-at-2 thru 6, headroom fixed at 6 entries";
    exp.variants.push_back(variant("baseline+", baselinePlusMachine()));
    for (unsigned mark : {2u, 4u, 6u}) {
        MachineConfig machine = baselineMachine();
        machine.writeBuffer.depth = mark + 6; // headroom fixed at 6
        machine.writeBuffer.highWaterMark = mark;
        machine.writeBuffer.hazardPolicy = policy;
        exp.variants.push_back(
            variant("retire-at-" + std::to_string(mark), machine));
    }
    return exp;
}

} // namespace

Experiment
figure06()
{
    return hazardPolicyExperiment("fig06", 10);
}

Experiment
figure07()
{
    return hazardPolicyExperiment("fig07", 8);
}

Experiment
figure08()
{
    return headroomSweepExperiment("fig08", LoadHazardPolicy::FlushPartial);
}

Experiment
figure09()
{
    return headroomSweepExperiment("fig09",
                                   LoadHazardPolicy::FlushItemOnly);
}

Experiment
figure10()
{
    Experiment exp;
    exp.id = "fig10";
    exp.title = "Stall Cycles as a Function of Cache Size";
    exp.subtitle = "4-deep, retire-at-2, flush-full";
    for (unsigned kb : {8u, 16u, 32u}) {
        MachineConfig machine = baselineMachine();
        machine.l1d.sizeBytes = kb * 1024;
        exp.variants.push_back(
            variant(std::to_string(kb) + "k", machine));
    }
    return exp;
}

Experiment
figure11()
{
    Experiment exp;
    exp.id = "fig11";
    exp.title = "Stall Cycles as a Function of L2 Access Time";
    exp.subtitle = "4-deep, retire-at-2, flush-full";
    for (unsigned lat : {3u, 6u, 10u}) {
        MachineConfig machine = baselineMachine();
        machine.l2Latency = lat;
        exp.variants.push_back(
            variant(std::to_string(lat) + "-cycles", machine));
    }
    return exp;
}

Experiment
figure12()
{
    Experiment exp;
    exp.id = "fig12";
    exp.title = "Stall Cycles, Perfect and Real Caches";
    exp.subtitle = "4-deep, retire-at-2, flush-full; mem = 25";
    exp.variants.push_back(variant("perfect-L2", baselineMachine()));
    for (unsigned kb : {1024u, 512u, 128u}) {
        MachineConfig machine = baselineMachine();
        machine.perfectL2 = false;
        machine.l2.sizeBytes = std::uint64_t{kb} * 1024;
        machine.memLatency = 25;
        std::string label = kb >= 1024
            ? std::to_string(kb / 1024) + "M-L2"
            : std::to_string(kb) + "k-L2";
        exp.variants.push_back(variant(label, machine));
    }
    return exp;
}

Experiment
figure13()
{
    Experiment exp;
    exp.id = "fig13";
    exp.title = "Stall Cycles, Perfect and Real Caches (memory latency)";
    exp.subtitle = "4-deep, retire-at-2, flush-full; 1M L2";
    exp.variants.push_back(variant("perfect-L2", baselineMachine()));
    for (unsigned mem : {25u, 50u}) {
        MachineConfig machine = baselineMachine();
        machine.perfectL2 = false;
        machine.l2.sizeBytes = 1024 * 1024;
        machine.memLatency = mem;
        exp.variants.push_back(
            variant("1M-L2,mm=" + std::to_string(mem), machine));
    }
    return exp;
}

Experiment
ablationFixedRate()
{
    Experiment exp;
    exp.id = "abl01";
    exp.title = "Occupancy-based vs fixed-rate retirement";
    exp.subtitle = "8-deep, flush-full";
    MachineConfig occupancy = baselineMachine();
    occupancy.writeBuffer.depth = 8;
    exp.variants.push_back(variant("retire-at-2", occupancy));
    for (Cycle period : {4u, 8u, 16u, 32u}) {
        MachineConfig machine = occupancy;
        machine.writeBuffer.retirementMode = RetirementMode::FixedRate;
        machine.writeBuffer.fixedRatePeriod = period;
        exp.variants.push_back(
            variant("fixed-rate-" + std::to_string(period), machine));
    }
    return exp;
}

Experiment
ablationAgeTimeout()
{
    Experiment exp;
    exp.id = "abl02";
    exp.title = "Age-timeout retirement of lingering entries";
    exp.subtitle = "12-deep, retire-at-8, read-from-WB";
    MachineConfig base = baselinePlusMachine();
    base.writeBuffer.highWaterMark = 8;
    base.writeBuffer.hazardPolicy = LoadHazardPolicy::ReadFromWB;
    exp.variants.push_back(variant("no-timeout", base));
    for (Cycle timeout : {64u, 256u}) {
        MachineConfig machine = base;
        machine.writeBuffer.ageTimeout = timeout;
        exp.variants.push_back(
            variant("timeout-" + std::to_string(timeout), machine));
    }
    return exp;
}

Experiment
ablationWritePriority()
{
    Experiment exp;
    exp.id = "abl03";
    exp.title = "Pure read-bypassing vs UltraSPARC write priority";
    exp.subtitle = "8-deep, retire-at-2, flush-full";
    MachineConfig base = baselineMachine();
    base.writeBuffer.depth = 8;
    exp.variants.push_back(variant("read-bypass", base));
    for (unsigned threshold : {6u, 7u}) {
        MachineConfig machine = base;
        machine.writeBuffer.writePriorityThreshold = threshold;
        exp.variants.push_back(
            variant("priority-at-" + std::to_string(threshold),
                    machine));
    }
    return exp;
}

Experiment
ablationNonCoalescing()
{
    Experiment exp;
    exp.id = "abl04";
    exp.title = "Coalescing vs non-coalescing write buffer";
    exp.subtitle = "retire-at-2, flush-full";
    for (unsigned depth : {4u, 8u}) {
        MachineConfig machine = baselineMachine();
        machine.writeBuffer.depth = depth;
        exp.variants.push_back(
            variant("coalescing-" + std::to_string(depth), machine));
    }
    for (unsigned depth : {4u, 8u}) {
        MachineConfig machine = baselineMachine();
        machine.writeBuffer.depth = depth;
        machine.writeBuffer.coalescing = false;
        machine.writeBuffer.entryBytes = 8; // one word per entry
        machine.writeBuffer.wordBytes = 4;
        exp.variants.push_back(
            variant("one-word-" + std::to_string(depth), machine));
    }
    return exp;
}

Experiment
ablationWriteCache()
{
    Experiment exp;
    exp.id = "abl05";
    exp.title = "FIFO write buffer vs Jouppi write cache";
    exp.subtitle = "8 entries";
    MachineConfig buffer = baselineMachine();
    buffer.writeBuffer.depth = 8;
    exp.variants.push_back(variant("write-buffer", buffer));
    MachineConfig cache = buffer;
    cache.writeBuffer.kind = BufferKind::WriteCache;
    exp.variants.push_back(variant("write-cache", cache));
    MachineConfig cache_rd = cache;
    cache_rd.writeBuffer.hazardPolicy = LoadHazardPolicy::ReadFromWB;
    exp.variants.push_back(variant("write-cache+rdWB", cache_rd));
    return exp;
}

Experiment
ablationDatapath()
{
    Experiment exp;
    exp.id = "abl06";
    exp.title = "L2 datapath width";
    exp.subtitle = "4-deep, retire-at-2, flush-full";
    for (unsigned width : {32u, 16u, 8u}) {
        MachineConfig machine = baselineMachine();
        machine.l2DatapathBytes = width;
        exp.variants.push_back(
            variant(std::to_string(width) + "B-datapath", machine));
    }
    return exp;
}

Experiment
ablationIssueWidth()
{
    Experiment exp;
    exp.id = "abl07";
    exp.title = "Issue width and store density";
    exp.subtitle = "4-deep, retire-at-2, flush-full";
    for (unsigned width : {1u, 2u, 4u}) {
        MachineConfig machine = baselineMachine();
        machine.issueWidth = width;
        exp.variants.push_back(
            variant(std::to_string(width) + "-wide", machine));
    }
    return exp;
}

Experiment
ablationBubbles()
{
    Experiment exp;
    exp.id = "abl08";
    exp.title = "Pipeline bubbles spread out stores";
    exp.subtitle = "4-deep, retire-at-2, flush-full";
    for (double prob : {0.0, 0.2, 0.4}) {
        MachineConfig machine = baselineMachine();
        machine.bubbleProbability = prob;
        exp.variants.push_back(
            variant("bubbles-" + std::to_string(int(prob * 100)) + "%",
                    machine));
    }
    return exp;
}

Experiment
ablationICache()
{
    Experiment exp;
    exp.id = "abl09";
    exp.title = "Perfect vs real instruction cache";
    exp.subtitle = "4-deep, retire-at-2, flush-full; 8K I-cache";
    exp.variants.push_back(variant("perfect-I", baselineMachine()));
    MachineConfig machine = baselineMachine();
    machine.perfectICache = false;
    exp.variants.push_back(variant("8k-I", machine));
    return exp;
}

Experiment
ablationWbHitCost()
{
    Experiment exp;
    exp.id = "abl10";
    exp.title = "Cost of loads served from the write buffer";
    exp.subtitle = "12-deep, retire-at-8, read-from-WB";
    for (Cycle extra : {0u, 1u, 2u}) {
        MachineConfig machine = baselinePlusMachine();
        machine.writeBuffer.highWaterMark = 8;
        machine.writeBuffer.hazardPolicy = LoadHazardPolicy::ReadFromWB;
        machine.writeBuffer.wbHitExtraCycles = extra;
        exp.variants.push_back(
            variant("+" + std::to_string(extra) + "-cycles", machine));
    }
    return exp;
}

Experiment
ablationEntryWidth()
{
    Experiment exp;
    exp.id = "abl11";
    exp.title = "Write buffer entry width (Table 2's Width parameter)";
    exp.subtitle = "8 entries, retire-at-2, flush-full, perfect L2";
    for (unsigned bytes : {8u, 16u, 32u, 64u}) {
        MachineConfig machine = baselineMachine();
        machine.writeBuffer.depth = 8;
        machine.writeBuffer.entryBytes = bytes;
        exp.variants.push_back(
            variant(std::to_string(bytes) + "B-entries", machine));
    }
    return exp;
}

Experiment
ablationRetireOrder()
{
    Experiment exp;
    exp.id = "abl13";
    exp.title = "Retirement order (Table 2's Retirement Order row)";
    exp.subtitle = "12-deep, retire-at-8, read-from-WB";
    for (RetirementOrder order :
         {RetirementOrder::Fifo, RetirementOrder::FullestFirst}) {
        MachineConfig machine = baselinePlusMachine();
        machine.writeBuffer.highWaterMark = 8;
        machine.writeBuffer.hazardPolicy = LoadHazardPolicy::ReadFromWB;
        machine.writeBuffer.retirementOrder = order;
        exp.variants.push_back(
            variant(retirementOrderName(order), machine));
    }
    return exp;
}

Experiment
ablationWriteAllocate()
{
    Experiment exp;
    exp.id = "abl14";
    exp.title = "L1 write-miss policy: write-around vs write-allocate";
    exp.subtitle = "4-deep, retire-at-2, flush-full";
    exp.variants.push_back(variant("write-around", baselineMachine()));
    MachineConfig machine = baselineMachine();
    machine.l1WriteAllocate = true;
    exp.variants.push_back(variant("write-allocate", machine));
    return exp;
}

Experiment
ablationPacing()
{
    Experiment exp;
    exp.id = "abl15";
    exp.title = "Bursty (evict-driven) vs paced (token-bucket) drain";
    exp.subtitle = "4-entry write cache, flush-full";
    // The write cache under occupancy mode is the burstiest drain in
    // the design space: it retires only on eviction, i.e. exactly
    // when a store is already stalled waiting for the entry. Paced
    // variants add a metered background drain (arming at the same
    // high-water mark a write buffer would use) that spreads the
    // same write traffic into the gaps between store bursts.
    MachineConfig bursty = baselineMachine();
    bursty.writeBuffer.kind = BufferKind::WriteCache;
    exp.variants.push_back(variant("evict-only", bursty));
    struct Knob { Cycle period; unsigned burst; };
    for (Knob knob : {Knob{8, 2}, Knob{16, 2}, Knob{32, 2}}) {
        MachineConfig machine = bursty;
        machine.writeBuffer.retirementMode = RetirementMode::Paced;
        machine.writeBuffer.pacedRefillPeriod = knob.period;
        machine.writeBuffer.pacedBurst = knob.burst;
        exp.variants.push_back(
            variant("paced-" + std::to_string(knob.period) + "x"
                        + std::to_string(knob.burst),
                    machine));
    }
    // The paper's FIFO buffer at the same geometry, for scale: its
    // retire-at-2 drain is already background-paced by occupancy.
    exp.variants.push_back(
        variant("wb-retire-at-2", baselineMachine()));
    return exp;
}

} // namespace wbsim::figures
