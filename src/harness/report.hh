/**
 * @file
 * Paper-style rendering of experiment results: a numeric table
 * (stall percentages by category) plus a text version of the
 * stacked-bar figures.
 */

#ifndef WBSIM_HARNESS_REPORT_HH
#define WBSIM_HARNESS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace wbsim
{

/** Options controlling report rendering. */
struct ReportOptions
{
    bool barChart = true;  //!< render the text figure
    bool csv = false;      //!< additionally emit CSV rows
    bool extended = false; //!< extra columns (hit rates, traffic)
};

/**
 * Print the full report for one experiment: title, per-benchmark
 * stall table (R/F/L/T as % of execution time, matching the paper's
 * bar order), and a stacked text bar chart.
 */
void printExperimentReport(std::ostream &os, const Experiment &experiment,
                           const std::vector<BenchmarkProfile> &profiles,
                           const ExperimentResults &results,
                           const ReportOptions &options = {});

/** One-line summary of a single run (for examples and debugging). */
std::string summarizeRun(const SimResults &results);

/**
 * The whole grid as a machine-readable JSON artifact (schema
 * wbsim-experiment-grid-v1), labelled from @p profiles and the
 * experiment's variants. @p options stamps the provenance header
 * (seed, instruction counts); the first variant's machine provides
 * the configuration fingerprint.
 */
void writeExperimentJson(std::ostream &os, const Experiment &experiment,
                         const std::vector<BenchmarkProfile> &profiles,
                         const ExperimentResults &results,
                         const RunnerOptions &options);

/** The whole grid as CSV: benchmark,variant + SimResults columns. */
void writeExperimentCsv(std::ostream &os, const Experiment &experiment,
                        const std::vector<BenchmarkProfile> &profiles,
                        const ExperimentResults &results);

} // namespace wbsim

#endif // WBSIM_HARNESS_REPORT_HH
