#include "harness/machines.hh"

#include "harness/figures.hh"

namespace wbsim::machines
{

MachineConfig
alpha21064()
{
    // §2.2: "the Alpha 21064 retires the oldest entry if 2 or more
    // entries are valid", flush-full on load hazards, and a lone
    // entry retires "after 256 cycles".
    MachineConfig machine = figures::baselineMachine();
    machine.writeBuffer.depth = 4;
    machine.writeBuffer.highWaterMark = 2;
    machine.writeBuffer.hazardPolicy = LoadHazardPolicy::FlushFull;
    machine.writeBuffer.ageTimeout = 256;
    return machine;
}

MachineConfig
alpha21164()
{
    // §2.2: "The 21164 has a similar buffer that is 6 entries deep
    // and uses flush-partial"; its age timeout is 64 cycles.
    MachineConfig machine = figures::baselineMachine();
    machine.writeBuffer.depth = 6;
    machine.writeBuffer.highWaterMark = 2;
    machine.writeBuffer.hazardPolicy = LoadHazardPolicy::FlushPartial;
    machine.writeBuffer.ageTimeout = 64;
    return machine;
}

MachineConfig
ultraSparc()
{
    // §2.2: "The UltraSPARC-I uses read-bypassing until the buffer
    // becomes too full, at which point the write buffer gets
    // priority for L2." The threshold is modelled as depth - 1.
    MachineConfig machine = figures::baselineMachine();
    machine.writeBuffer.depth = 8;
    machine.writeBuffer.highWaterMark = 2;
    machine.writeBuffer.hazardPolicy = LoadHazardPolicy::FlushFull;
    machine.writeBuffer.writePriorityThreshold = 7;
    return machine;
}

MachineConfig
paperRecommendation()
{
    // §3.5: "a deep, read-from-WB buffer with at least 4 to 6
    // entries of headroom".
    MachineConfig machine = figures::baselineMachine();
    machine.writeBuffer.depth = 12;
    machine.writeBuffer.highWaterMark = 8;
    machine.writeBuffer.hazardPolicy = LoadHazardPolicy::ReadFromWB;
    return machine;
}

std::vector<NamedMachine>
allMachines()
{
    return {
        {"Alpha-21064", alpha21064()},
        {"Alpha-21164", alpha21164()},
        {"UltraSPARC", ultraSparc()},
        {"paper-best", paperRecommendation()},
    };
}

} // namespace wbsim::machines
