/**
 * @file
 * Experiment descriptions and the grid runner: each of the paper's
 * figures is "all benchmarks x a set of machine variants".
 */

#ifndef WBSIM_HARNESS_EXPERIMENT_HH
#define WBSIM_HARNESS_EXPERIMENT_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/hooks.hh"
#include "sim/machine_config.hh"
#include "sim/multicore.hh"
#include "sim/results.hh"
#include "util/lint.hh"
#include "workloads/profile.hh"

namespace wbsim
{

/** One machine variant within an experiment (one bar per group). */
struct ConfigVariant
{
    /** Short label, e.g. "retire-at-4" or "8k". */
    std::string label;
    MachineConfig machine;
};

/** One of the paper's figures/tables as a runnable experiment. */
struct Experiment
{
    /** Identity like "fig04". */
    std::string id;
    /** Paper caption, e.g. "Stall Cycles as a Function of Depth". */
    std::string title;
    /** Sub-caption, e.g. "retire-at-2, flush-full". */
    std::string subtitle;
    std::vector<ConfigVariant> variants;
};

/** Results indexed [benchmark][variant]. */
using ExperimentResults = std::vector<std::vector<SimResults>>;

/** Settings for running experiment grids. */
struct RunnerOptions
{
    /** Instructions per simulation; WBSIM_INSTRUCTIONS overrides. */
    Count instructions = 0;
    /** Warmup instructions before stats reset; WBSIM_WARMUP
     *  overrides. Warmup populates the caches so steady-state rates
     *  are measured (the paper's full-program runs amortise
     *  compulsory misses; short synthetic runs must warm up). */
    Count warmup = 0;
    /** Worker threads; WBSIM_THREADS overrides, 0 = all cores. */
    unsigned threads = 0;
    /** Workload generator seed. */
    std::uint64_t seed = 1;
    /** Materialize each (benchmark, seed, length) trace once and
     *  replay it for every variant, instead of regenerating it per
     *  cell; WBSIM_MATERIALIZE=0 disables. */
    bool materialize = true;
    /** Reuse warm-state checkpoints between cells with identical
     *  (benchmark, seed, warmup, machine fingerprint); implies
     *  materialize. WBSIM_CHECKPOINTS=0 disables. */
    bool checkpoints = true;
    /** Observability sinks attached to every measured simulation
     *  (after warmup, so metrics cover the measured region only).
     *  The sinks are not synchronised: leave detached (the default)
     *  for parallel grids, or run with threads = 1. */
    obs::ObsSink obs{};

    /** Resolve env overrides and defaults. */
    static RunnerOptions fromEnvironment();
};

/** Run one benchmark on one machine (uncached reference path: the
 *  trace is generated in place and warmup is always simulated).
 *  @p obs sinks, if any, attach after warmup. */
WBSIM_DETERMINISTIC SimResults
runOne(const BenchmarkProfile &profile, const MachineConfig &machine,
       Count instructions, std::uint64_t seed = 1, Count warmup = 0,
       const obs::ObsSink &obs = {});

/**
 * Run one benchmark on one machine through the process-wide grid
 * caches, honouring @p options.materialize / @p options.checkpoints.
 * Bit-identical to the uncached runOne (debug builds verify this on
 * every cached call). @p seed overrides options.seed so replicated
 * runs can share the cache.
 */
WBSIM_DETERMINISTIC SimResults
runOne(const BenchmarkProfile &profile, const MachineConfig &machine,
       const RunnerOptions &options, std::uint64_t seed);

/**
 * Run a multi-core cell (machine.cores cores contending for the
 * shared L2 bus) and return the per-core detail. Core i runs the
 * workload generated from seed + i, so cores execute decorrelated
 * instances of the same benchmark profile. Honours
 * @p options.materialize through the grid trace cache (one cached
 * trace per core seed); warm-state checkpoints do not apply to
 * multi-core cells and are bypassed. @p options.obs sinks attach to
 * every core (shared registry = aggregated metrics) plus the bus
 * timeline channel.
 *
 * Both runOne overloads delegate here when machine.cores > 1 and
 * return the aggregate() view, so grids, replication, serve cells,
 * and caching treat topology like any other machine axis.
 */
WBSIM_DETERMINISTIC MultiCoreResults
runMultiCore(const BenchmarkProfile &profile,
             const MachineConfig &machine,
             const RunnerOptions &options, std::uint64_t seed);

/** Hit/build/eviction counters and footprint for the process-wide
 *  grid caches. */
struct GridCacheStats
{
    std::size_t traceBuilds = 0;
    std::size_t traceHits = 0;
    std::size_t checkpointBuilds = 0;
    std::size_t checkpointHits = 0;
    /** LRU evictions forced by the byte budget. */
    std::size_t traceEvictions = 0;
    std::size_t checkpointEvictions = 0;
    /** Approximate bytes of resident traces and checkpoints. */
    std::size_t cachedBytes = 0;
    /** Current byte budget; 0 = unbounded. */
    std::size_t budgetBytes = 0;
};

/** Snapshot the grid-cache counters (tests and benchmarks). */
GridCacheStats gridCacheStats();

/**
 * Bound the process-wide grid caches to roughly @p bytes (0 =
 * unbounded, the CLI default). When a build pushes the footprint
 * over the budget, least-recently-used resolved entries are evicted
 * (in-flight builds are never evicted; waiters hold their own
 * futures, so eviction only forces a rebuild on the *next* ask).
 * Long-running services (wbsim-serve) must set a budget — an
 * unbounded cache over an unbounded query stream is a leak. The
 * WBSIM_GRID_CACHE_MB env var sets the initial budget.
 */
void setGridCacheByteBudget(std::size_t bytes);

/** Drop all cached traces and checkpoints and zero the counters.
 *  Callers must not race this with an in-flight runExperiment. */
void clearGridCaches();

/** Run the full benchmark x variant grid, in parallel. */
ExperimentResults runExperiment(const Experiment &experiment,
                                const std::vector<BenchmarkProfile> &
                                    profiles,
                                const RunnerOptions &options);

/** Mean and sample standard deviation of a metric over replicas. */
struct MetricSummary
{
    double mean = 0.0;
    double sd = 0.0;
    std::size_t n = 0;
};

/**
 * Run one benchmark/machine cell with @p replicas different workload
 * seeds (baseSeed, baseSeed+1, ...), in parallel. Seed replication
 * quantifies how much of a result is workload-model noise versus
 * design signal.
 */
std::vector<SimResults> runReplicated(const BenchmarkProfile &profile,
                                      const MachineConfig &machine,
                                      const RunnerOptions &options,
                                      unsigned replicas);

/** Summarise a metric (e.g. &SimResults::pctTotalStalls). */
MetricSummary summarizeMetric(
    const std::vector<SimResults> &runs,
    const std::function<double(const SimResults &)> &metric);

} // namespace wbsim

#endif // WBSIM_HARNESS_EXPERIMENT_HH
