#include "harness/report.hh"

#include <sstream>

#include "obs/export.hh"
#include "util/barchart.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace wbsim
{

void
printExperimentReport(std::ostream &os, const Experiment &experiment,
                      const std::vector<BenchmarkProfile> &profiles,
                      const ExperimentResults &results,
                      const ReportOptions &options)
{
    wbsim_assert(results.size() == profiles.size(),
                 "result/profile size mismatch");

    os << "== " << experiment.id << ": " << experiment.title << "\n";
    if (!experiment.subtitle.empty())
        os << "   (" << experiment.subtitle << ")\n";

    TextTable table;
    std::vector<std::string> header = {"benchmark", "config",
                                       "R%", "F%", "L%", "T%"};
    if (options.extended) {
        header.insert(header.end(),
                      {"L1hit%", "WBhit%", "haz", "wb-served",
                       "words/wr"});
    }
    table.setHeader(header);

    for (std::size_t b = 0; b < profiles.size(); ++b) {
        for (std::size_t v = 0; v < experiment.variants.size(); ++v) {
            const SimResults &r = results[b][v];
            std::vector<std::string> row = {
                profiles[b].name,
                experiment.variants[v].label,
                formatPercent(r.pctL2ReadAccess()),
                formatPercent(r.pctBufferFull()),
                formatPercent(r.pctLoadHazard()),
                formatPercent(r.pctTotalStalls()),
            };
            if (options.extended) {
                row.push_back(formatPercent(100 * r.l1LoadHitRate()));
                row.push_back(formatPercent(100 * r.wbMergeRate()));
                row.push_back(std::to_string(r.wbHazards));
                row.push_back(std::to_string(r.wbServedLoads));
                double words = r.wbEntriesWritten
                    ? double(r.wbWordsWritten) / double(r.wbEntriesWritten)
                    : 0.0;
                row.push_back(formatDouble(words, 2));
            }
            table.addRow(std::move(row));
        }
        if (experiment.variants.size() > 1
            && b + 1 < profiles.size()) {
            table.addSeparator();
        }
    }
    table.render(os);

    if (options.csv) {
        os << "-- csv --\n";
        table.renderCsv(os);
    }

    if (options.barChart) {
        BarChart chart({"L2-read-access", "buffer-full", "load-hazard"});
        for (std::size_t b = 0; b < profiles.size(); ++b) {
            chart.beginGroup(profiles[b].name);
            for (std::size_t v = 0; v < experiment.variants.size();
                 ++v) {
                const SimResults &r = results[b][v];
                chart.addBar(StackedBar{
                    experiment.variants[v].label,
                    {r.pctL2ReadAccess(), r.pctBufferFull(),
                     r.pctLoadHazard()}});
            }
        }
        chart.render(os);
    }
    os << "\n";
}

std::string
summarizeRun(const SimResults &results)
{
    std::ostringstream os;
    os << results.workload << " [" << results.machine << "]: "
       << results.instructions << " instructions, " << results.cycles
       << " cycles (CPI " << formatDouble(
              results.instructions
                  ? double(results.cycles) / double(results.instructions)
                  : 0.0, 3)
       << "); stalls R=" << formatPercent(results.pctL2ReadAccess())
       << "% F=" << formatPercent(results.pctBufferFull())
       << "% L=" << formatPercent(results.pctLoadHazard())
       << "% T=" << formatPercent(results.pctTotalStalls()) << "%";
    return os.str();
}

namespace
{

std::vector<std::string>
benchmarkLabels(const std::vector<BenchmarkProfile> &profiles)
{
    std::vector<std::string> labels;
    labels.reserve(profiles.size());
    for (const BenchmarkProfile &profile : profiles)
        labels.push_back(profile.name);
    return labels;
}

std::vector<std::string>
variantLabels(const Experiment &experiment)
{
    std::vector<std::string> labels;
    labels.reserve(experiment.variants.size());
    for (const ConfigVariant &variant : experiment.variants)
        labels.push_back(variant.label);
    return labels;
}

} // namespace

void
writeExperimentJson(std::ostream &os, const Experiment &experiment,
                    const std::vector<BenchmarkProfile> &profiles,
                    const ExperimentResults &results,
                    const RunnerOptions &options)
{
    obs::Provenance provenance;
    if (!experiment.variants.empty()) {
        const MachineConfig &machine = experiment.variants[0].machine;
        provenance.machineFingerprint = machine.stateFingerprint();
        provenance.machine = machine.describe();
    }
    provenance.seed = options.seed;
    provenance.instructions = options.instructions;
    provenance.warmup = options.warmup;
    obs::writeGridJson(os, experiment.id, experiment.title,
                       benchmarkLabels(profiles),
                       variantLabels(experiment), results, provenance);
}

void
writeExperimentCsv(std::ostream &os, const Experiment &experiment,
                   const std::vector<BenchmarkProfile> &profiles,
                   const ExperimentResults &results)
{
    obs::writeGridCsv(os, benchmarkLabels(profiles),
                      variantLabels(experiment), results);
}

} // namespace wbsim
