#include "harness/experiment.hh"

#include <cmath>

#include "sim/simulator.hh"
#include "util/options.hh"
#include "util/thread_pool.hh"
#include "workloads/generator.hh"

namespace wbsim
{

RunnerOptions
RunnerOptions::fromEnvironment()
{
    RunnerOptions options;
    options.instructions = envUint("WBSIM_INSTRUCTIONS", 1'000'000);
    options.warmup =
        envUint("WBSIM_WARMUP", options.instructions / 2);
    options.threads = defaultThreads();
    options.seed = envUint("WBSIM_SEED", 1);
    return options;
}

SimResults
runOne(const BenchmarkProfile &profile, const MachineConfig &machine,
       Count instructions, std::uint64_t seed, Count warmup)
{
    SyntheticSource source(profile, instructions + warmup, seed);
    Simulator simulator(machine);
    if (warmup > 0) {
        TraceRecord record;
        Count done = 0;
        while (done < warmup && source.next(record)) {
            simulator.step(record);
            ++done;
        }
        simulator.resetStats();
    }
    return simulator.run(source);
}

ExperimentResults
runExperiment(const Experiment &experiment,
              const std::vector<BenchmarkProfile> &profiles,
              const RunnerOptions &options)
{
    const std::size_t benchmarks = profiles.size();
    const std::size_t variants = experiment.variants.size();
    ExperimentResults results(benchmarks,
                              std::vector<SimResults>(variants));
    parallelFor(benchmarks * variants, options.threads,
                [&](std::size_t index) {
                    std::size_t b = index / variants;
                    std::size_t v = index % variants;
                    results[b][v] =
                        runOne(profiles[b],
                               experiment.variants[v].machine,
                               options.instructions, options.seed,
                               options.warmup);
                });
    return results;
}

std::vector<SimResults>
runReplicated(const BenchmarkProfile &profile,
              const MachineConfig &machine,
              const RunnerOptions &options, unsigned replicas)
{
    std::vector<SimResults> runs(replicas);
    parallelFor(replicas, options.threads, [&](std::size_t i) {
        runs[i] = runOne(profile, machine, options.instructions,
                         options.seed + i, options.warmup);
    });
    return runs;
}

MetricSummary
summarizeMetric(const std::vector<SimResults> &runs,
                const std::function<double(const SimResults &)> &metric)
{
    MetricSummary summary;
    summary.n = runs.size();
    if (runs.empty())
        return summary;
    double sum = 0.0;
    for (const SimResults &r : runs)
        sum += metric(r);
    summary.mean = sum / double(runs.size());
    if (runs.size() > 1) {
        double ss = 0.0;
        for (const SimResults &r : runs) {
            double d = metric(r) - summary.mean;
            ss += d * d;
        }
        summary.sd = std::sqrt(ss / double(runs.size() - 1));
    }
    return summary;
}

} // namespace wbsim
