#include "harness/experiment.hh"

#include <cmath>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "sim/simulator.hh"
#include "trace/materialized_trace.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/thread_pool.hh"
#include "workloads/generator.hh"

namespace wbsim
{

namespace
{

#ifdef NDEBUG
constexpr bool kDebugBuild = false;
#else
constexpr bool kDebugBuild = true;
#endif

/** Map/key/control-block overhead charged per cached entry. */
constexpr std::size_t kEntryOverhead = 256;

/**
 * Approximate resident bytes of one warm-state checkpoint. The
 * dominant term is per-line cache state (tag + status per line in
 * every modelled cache); the rest (write buffer, ports, RNG) is a
 * small fixed cost. An estimate is enough here: the budget bounds
 * the cache to the right order of magnitude, it is not an allocator.
 */
std::size_t
approxSnapshotBytes(const MachineConfig &machine)
{
    auto lines = [](const CacheGeometry &g) {
        return std::size_t(g.sizeBytes / g.lineBytes);
    };
    std::size_t count = lines(machine.l1d);
    if (!machine.perfectICache)
        count += lines(machine.l1i);
    if (!machine.perfectL2)
        count += lines(machine.l2);
    return count * 32 + 4 * 1024 + kEntryOverhead;
}

/**
 * The process-wide grid caches: materialized traces keyed by
 * (benchmark, seed, length) and warm-state checkpoints keyed by
 * (benchmark, seed, warmup, machine state fingerprint). Both are
 * build-once: the first worker to ask for a key builds the value
 * while later askers block on a shared_future, so concurrent grid
 * cells never duplicate work.
 *
 * The cache is byte-bounded: when a budget is set (WBSIM_GRID_CACHE_MB
 * or setGridCacheByteBudget) and a build pushes the resident
 * footprint past it, the least-recently-used *resolved* entries are
 * evicted across both maps until the footprint fits. In-flight
 * builds are never evicted, and eviction never invalidates a value a
 * caller already holds (values are shared_ptr; the map only drops
 * its reference), so a too-small budget degrades throughput, never
 * correctness.
 *
 * Thread-safety contract: maps, LRU list and counters are only
 * touched under mutex_ (WBSIM_GUARDED_BY on every such member, so
 * wbsim-lint's WL-LOCK-GUARD proves it statically); the values are
 * immutable once the future resolves (shared_ptr<const>), so
 * readers never race with the builder. Verified race-free by CI's
 * `tsan` job, which runs the harness tests under ThreadSanitizer
 * with no suppressions.
 */
class GridCache
{
  public:
    using TracePtr = std::shared_ptr<const MaterializedTrace>;
    using SnapPtr = std::shared_ptr<const SimSnapshot>;

    GridCache()
    {
        budget_ = std::size_t(envUint("WBSIM_GRID_CACHE_MB", 0))
                  * 1024 * 1024;
    }

    TracePtr trace(const BenchmarkProfile &profile, std::uint64_t seed,
                   Count length)
    {
        std::ostringstream key;
        key << profile.name << '#' << seed << '#' << length;
        return dedupe<TracePtr>(
            /*isTrace=*/true, key.str(),
            [&]() {
                SyntheticSource source(profile, length, seed);
                return std::make_shared<const MaterializedTrace>(
                    MaterializedTrace::build(source));
            },
            [](const TracePtr &t) {
                return t->encodedBytes() + kEntryOverhead;
            });
    }

    SnapPtr checkpoint(const BenchmarkProfile &profile,
                       const MachineConfig &machine, std::uint64_t seed,
                       Count warmup, const MaterializedTrace &trace)
    {
        std::ostringstream key;
        key << profile.name << '#' << seed << '#' << warmup << '#'
            << machine.stateFingerprint();
        return dedupe<SnapPtr>(
            /*isTrace=*/false, key.str(),
            [&]() {
                Simulator simulator(machine);
                MaterializedCursor cursor(trace);
                Count done = simulator.consume(cursor, warmup);
                wbsim_assert(done == warmup,
                             "trace shorter than warmup");
                simulator.resetStats();
                return std::make_shared<const SimSnapshot>(
                    simulator.snapshot());
            },
            [&machine](const SnapPtr &) {
                return approxSnapshotBytes(machine);
            });
    }

    GridCacheStats stats()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        GridCacheStats out = stats_;
        out.cachedBytes = bytes_;
        out.budgetBytes = budget_;
        return out;
    }

    void setByteBudget(std::size_t bytes)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        budget_ = bytes;
        evictLocked();
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        traces_.clear();
        snapshots_.clear();
        lru_.clear();
        bytes_ = 0;
        ++generation_;
        stats_ = GridCacheStats{};
    }

  private:
    /** MRU at the back; only resolved entries are listed. */
    using LruList = std::list<std::pair<bool, std::string>>;

    template <typename Ptr> struct Slot
    {
        std::shared_future<Ptr> future;
        std::size_t bytes = 0;
        bool resolved = false;
        /** clear() epoch at insert; a stale builder must not book
         *  bytes against a slot re-created after a clear(). */
        std::uint64_t generation = 0;
        LruList::iterator lru{};
    };

    template <typename Ptr>
    using Map = std::unordered_map<std::string, Slot<Ptr>>;

    /** The map holding entries of @p Ptr's kind. Tag-pointer
     *  overloads (not a template) so the WBSIM_REQUIRES contract is
     *  visible to the analyzer: the returned reference is guarded
     *  state and every caller selects it under mutex_. */
    WBSIM_REQUIRES(mutex_) Map<TracePtr> &mapFor(const TracePtr *)
    {
        return traces_;
    }
    WBSIM_REQUIRES(mutex_) Map<SnapPtr> &mapFor(const SnapPtr *)
    {
        return snapshots_;
    }

    template <typename Ptr, typename Build, typename SizeOf>
    Ptr dedupe(bool isTrace, const std::string &key, Build build,
               SizeOf sizeOf)
    {
        std::promise<Ptr> promise;
        std::shared_future<Ptr> future;
        bool is_builder = false;
        std::uint64_t my_generation = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            Map<Ptr> &map = mapFor(static_cast<const Ptr *>(nullptr));
            auto it = map.find(key);
            if (it == map.end()) {
                future = promise.get_future().share();
                Slot<Ptr> slot;
                slot.future = future;
                slot.generation = generation_;
                my_generation = generation_;
                map.emplace(key, std::move(slot));
                is_builder = true;
                ++(isTrace ? stats_.traceBuilds
                           : stats_.checkpointBuilds);
            } else {
                future = it->second.future;
                ++(isTrace ? stats_.traceHits
                           : stats_.checkpointHits);
                if (it->second.resolved)
                    lru_.splice(lru_.end(), lru_, it->second.lru);
            }
        }
        if (!is_builder)
            return future.get();

        Ptr value = build();
        promise.set_value(value);
        std::lock_guard<std::mutex> lock(mutex_);
        Map<Ptr> &map = mapFor(static_cast<const Ptr *>(nullptr));
        auto it = map.find(key);
        if (it != map.end() && !it->second.resolved
            && it->second.generation == my_generation) {
            it->second.resolved = true;
            it->second.bytes = sizeOf(value);
            it->second.lru =
                lru_.insert(lru_.end(), {isTrace, key});
            bytes_ += it->second.bytes;
            evictLocked();
        }
        return value;
    }

    WBSIM_REQUIRES(mutex_) void evictLocked()
    {
        while (budget_ != 0 && bytes_ > budget_ && !lru_.empty()) {
            const auto &[isTrace, key] = lru_.front();
            if (isTrace)
                evictFrom(traces_, key, stats_.traceEvictions);
            else
                evictFrom(snapshots_, key,
                          stats_.checkpointEvictions);
            lru_.pop_front();
        }
    }

    template <typename Ptr>
    WBSIM_REQUIRES(mutex_) void evictFrom(Map<Ptr> &map,
                                          const std::string &key,
                                          std::size_t &evictions)
    {
        auto it = map.find(key);
        wbsim_assert(it != map.end() && it->second.resolved,
                     "grid-cache LRU entry out of sync with its map");
        bytes_ -= it->second.bytes;
        map.erase(it);
        ++evictions;
    }

    std::mutex mutex_;
    WBSIM_GUARDED_BY(mutex_) Map<TracePtr> traces_;
    WBSIM_GUARDED_BY(mutex_) Map<SnapPtr> snapshots_;
    WBSIM_GUARDED_BY(mutex_) LruList lru_;
    WBSIM_GUARDED_BY(mutex_) GridCacheStats stats_;
    WBSIM_GUARDED_BY(mutex_) std::size_t bytes_ = 0;
    WBSIM_GUARDED_BY(mutex_) std::size_t budget_ = 0;
    WBSIM_GUARDED_BY(mutex_) std::uint64_t generation_ = 0;
};

GridCache &
gridCache()
{
    static GridCache cache;
    return cache;
}

} // namespace

RunnerOptions
RunnerOptions::fromEnvironment()
{
    RunnerOptions options;
    options.instructions = envUint("WBSIM_INSTRUCTIONS", 1'000'000);
    options.warmup =
        envUint("WBSIM_WARMUP", options.instructions / 2);
    options.threads = defaultThreads();
    options.seed = envUint("WBSIM_SEED", 1);
    options.materialize = envUint("WBSIM_MATERIALIZE", 1) != 0;
    options.checkpoints = envUint("WBSIM_CHECKPOINTS", 1) != 0;
    return options;
}

MultiCoreResults
runMultiCore(const BenchmarkProfile &profile,
             const MachineConfig &machine,
             const RunnerOptions &options, std::uint64_t seed)
{
    wbsim_assert(machine.cores >= 1, "runMultiCore with no cores");
    Count length = options.instructions + options.warmup;
    MultiCoreSystem system(machine);
    if (options.obs.attached()) {
        for (unsigned i = 0; i < system.cores(); ++i)
            system.attachObs(i, options.obs);
        system.attachBusTimeline(options.obs.timeline);
    }

    MultiCoreResults result;
    if (options.materialize) {
        // One cached trace per core seed; checkpoints are bypassed
        // (a warm snapshot captures one core, not a system).
        GridCache &cache = gridCache();
        std::vector<GridCache::TracePtr> traces;
        std::vector<std::unique_ptr<MaterializedCursor>> cursors;
        std::vector<TraceSource *> sources;
        for (unsigned i = 0; i < system.cores(); ++i) {
            traces.push_back(cache.trace(profile, seed + i, length));
            cursors.push_back(
                std::make_unique<MaterializedCursor>(*traces.back()));
            sources.push_back(cursors.back().get());
        }
        result = system.run(sources, options.warmup);
    } else {
        std::vector<std::unique_ptr<SyntheticSource>> generators;
        std::vector<TraceSource *> sources;
        for (unsigned i = 0; i < system.cores(); ++i) {
            generators.push_back(std::make_unique<SyntheticSource>(
                profile, length, seed + i));
            sources.push_back(generators.back().get());
        }
        result = system.run(sources, options.warmup);
    }

    if constexpr (kDebugBuild) {
        if (options.materialize) {
            // Shadow the cached cell with the regenerate-in-place
            // path, like the single-core debug cross-check: replay
            // must never change a bit of any core's results.
            RunnerOptions uncached = options;
            uncached.materialize = false;
            uncached.checkpoints = false;
            uncached.obs = {};
            MultiCoreSystem reference_system(machine);
            std::vector<std::unique_ptr<SyntheticSource>> generators;
            std::vector<TraceSource *> sources;
            for (unsigned i = 0; i < reference_system.cores(); ++i) {
                generators.push_back(
                    std::make_unique<SyntheticSource>(profile, length,
                                                      seed + i));
                sources.push_back(generators.back().get());
            }
            MultiCoreResults reference =
                reference_system.run(sources, options.warmup);
            wbsim_assert(result.perCore == reference.perCore
                         && result.bus == reference.bus,
                         "cached multi-core cell diverged from the "
                         "uncached reference run (workload ",
                         profile.name, ", machine ",
                         machine.describe(), ")");
        }
    }
    return result;
}

SimResults
runOne(const BenchmarkProfile &profile, const MachineConfig &machine,
       Count instructions, std::uint64_t seed, Count warmup,
       const obs::ObsSink &obs)
{
    if (machine.cores > 1) {
        RunnerOptions options;
        options.instructions = instructions;
        options.warmup = warmup;
        options.materialize = false;
        options.checkpoints = false;
        options.obs = obs;
        return runMultiCore(profile, machine, options, seed)
            .aggregate();
    }
    SyntheticSource source(profile, instructions + warmup, seed);
    Simulator simulator(machine);
    if (warmup > 0) {
        simulator.consume(source, warmup);
        simulator.resetStats();
    }
    if (obs.attached())
        simulator.attachObs(obs);
    return simulator.run(source);
}

SimResults
runOne(const BenchmarkProfile &profile, const MachineConfig &machine,
       const RunnerOptions &options, std::uint64_t seed)
{
    if (machine.cores > 1)
        return runMultiCore(profile, machine, options, seed)
            .aggregate();
    if (!options.materialize && !options.checkpoints)
        return runOne(profile, machine, options.instructions, seed,
                      options.warmup, options.obs);

    GridCache &cache = gridCache();
    Count length = options.instructions + options.warmup;
    GridCache::TracePtr trace = cache.trace(profile, seed, length);
    MaterializedCursor cursor(*trace);
    Simulator simulator(machine);
    if (options.warmup > 0) {
        if (options.checkpoints) {
            GridCache::SnapPtr snap = cache.checkpoint(
                profile, machine, seed, options.warmup, *trace);
            simulator.restore(*snap);
            cursor.seek(options.warmup);
        } else {
            simulator.consume(cursor, options.warmup);
            simulator.resetStats();
        }
    }
    if (options.obs.attached())
        simulator.attachObs(options.obs);
    SimResults result = simulator.run(cursor);

    if constexpr (kDebugBuild) {
        // Debug builds shadow every cached cell with the uncached
        // reference path: materialization and checkpoint-resume must
        // never change a single bit of any result.
        SimResults reference = runOne(profile, machine,
                                      options.instructions, seed,
                                      options.warmup);
        wbsim_assert(result == reference,
                     "cached grid cell diverged from the uncached "
                     "reference run (workload ",
                     profile.name, ", machine ", machine.describe(),
                     ")");
    }
    return result;
}

GridCacheStats
gridCacheStats()
{
    return gridCache().stats();
}

void
setGridCacheByteBudget(std::size_t bytes)
{
    gridCache().setByteBudget(bytes);
}

void
clearGridCaches()
{
    gridCache().clear();
}

ExperimentResults
runExperiment(const Experiment &experiment,
              const std::vector<BenchmarkProfile> &profiles,
              const RunnerOptions &options)
{
    const std::size_t benchmarks = profiles.size();
    const std::size_t variants = experiment.variants.size();
    ExperimentResults results(benchmarks,
                              std::vector<SimResults>(variants));
    parallelFor(benchmarks * variants, options.threads,
                [&](std::size_t index) {
                    std::size_t b = index / variants;
                    std::size_t v = index % variants;
                    results[b][v] =
                        runOne(profiles[b],
                               experiment.variants[v].machine,
                               options, options.seed);
                });
    return results;
}

std::vector<SimResults>
runReplicated(const BenchmarkProfile &profile,
              const MachineConfig &machine,
              const RunnerOptions &options, unsigned replicas)
{
    std::vector<SimResults> runs(replicas);
    parallelFor(replicas, options.threads, [&](std::size_t i) {
        runs[i] = runOne(profile, machine, options, options.seed + i);
    });
    return runs;
}

MetricSummary
summarizeMetric(const std::vector<SimResults> &runs,
                const std::function<double(const SimResults &)> &metric)
{
    MetricSummary summary;
    summary.n = runs.size();
    if (runs.empty())
        return summary;
    double sum = 0.0;
    for (const SimResults &r : runs)
        sum += metric(r);
    summary.mean = sum / double(runs.size());
    if (runs.size() > 1) {
        double ss = 0.0;
        for (const SimResults &r : runs) {
            double d = metric(r) - summary.mean;
            ss += d * d;
        }
        summary.sd = std::sqrt(ss / double(runs.size() - 1));
    }
    return summary;
}

} // namespace wbsim
