#include "harness/experiment.hh"

#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "sim/simulator.hh"
#include "trace/materialized_trace.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/thread_pool.hh"
#include "workloads/generator.hh"

namespace wbsim
{

namespace
{

#ifdef NDEBUG
constexpr bool kDebugBuild = false;
#else
constexpr bool kDebugBuild = true;
#endif

/**
 * The process-wide grid caches: materialized traces keyed by
 * (benchmark, seed, length) and warm-state checkpoints keyed by
 * (benchmark, seed, warmup, machine state fingerprint). Both are
 * build-once: the first worker to ask for a key builds the value
 * while later askers block on a shared_future, so concurrent grid
 * cells never duplicate work.
 *
 * Thread-safety contract: the map is only touched under mutex_; the
 * values are immutable once the future resolves (shared_ptr<const>),
 * so readers never race with the builder. Verified race-free by
 * CI's `tsan` job, which runs the harness tests under
 * ThreadSanitizer with no suppressions.
 */
class GridCache
{
  public:
    using TracePtr = std::shared_ptr<const MaterializedTrace>;
    using SnapPtr = std::shared_ptr<const SimSnapshot>;

    TracePtr trace(const BenchmarkProfile &profile, std::uint64_t seed,
                   Count length)
    {
        std::ostringstream key;
        key << profile.name << '#' << seed << '#' << length;
        return dedupe(traces_, key.str(), stats_.traceBuilds,
                      stats_.traceHits, [&]() {
                          SyntheticSource source(profile, length, seed);
                          return std::make_shared<
                              const MaterializedTrace>(
                              MaterializedTrace::build(source));
                      });
    }

    SnapPtr checkpoint(const BenchmarkProfile &profile,
                       const MachineConfig &machine, std::uint64_t seed,
                       Count warmup, const MaterializedTrace &trace)
    {
        std::ostringstream key;
        key << profile.name << '#' << seed << '#' << warmup << '#'
            << machine.stateFingerprint();
        return dedupe(snapshots_, key.str(), stats_.checkpointBuilds,
                      stats_.checkpointHits, [&]() {
                          Simulator simulator(machine);
                          MaterializedCursor cursor(trace);
                          Count done =
                              simulator.consume(cursor, warmup);
                          wbsim_assert(done == warmup,
                                       "trace shorter than warmup");
                          simulator.resetStats();
                          return std::make_shared<const SimSnapshot>(
                              simulator.snapshot());
                      });
    }

    GridCacheStats stats()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        traces_.clear();
        snapshots_.clear();
        stats_ = GridCacheStats{};
    }

  private:
    template <typename Ptr, typename Build>
    Ptr dedupe(std::unordered_map<std::string, std::shared_future<Ptr>>
                   &map,
               const std::string &key, std::size_t &builds,
               std::size_t &hits, Build build)
    {
        std::promise<Ptr> promise;
        std::shared_future<Ptr> future;
        bool is_builder = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = map.find(key);
            if (it == map.end()) {
                future = promise.get_future().share();
                map.emplace(key, future);
                is_builder = true;
                ++builds;
            } else {
                future = it->second;
                ++hits;
            }
        }
        if (is_builder)
            promise.set_value(build());
        return future.get();
    }

    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_future<TracePtr>>
        traces_;
    std::unordered_map<std::string, std::shared_future<SnapPtr>>
        snapshots_;
    GridCacheStats stats_;
};

GridCache &
gridCache()
{
    static GridCache cache;
    return cache;
}

} // namespace

RunnerOptions
RunnerOptions::fromEnvironment()
{
    RunnerOptions options;
    options.instructions = envUint("WBSIM_INSTRUCTIONS", 1'000'000);
    options.warmup =
        envUint("WBSIM_WARMUP", options.instructions / 2);
    options.threads = defaultThreads();
    options.seed = envUint("WBSIM_SEED", 1);
    options.materialize = envUint("WBSIM_MATERIALIZE", 1) != 0;
    options.checkpoints = envUint("WBSIM_CHECKPOINTS", 1) != 0;
    return options;
}

SimResults
runOne(const BenchmarkProfile &profile, const MachineConfig &machine,
       Count instructions, std::uint64_t seed, Count warmup,
       const obs::ObsSink &obs)
{
    SyntheticSource source(profile, instructions + warmup, seed);
    Simulator simulator(machine);
    if (warmup > 0) {
        simulator.consume(source, warmup);
        simulator.resetStats();
    }
    if (obs.attached())
        simulator.attachObs(obs);
    return simulator.run(source);
}

SimResults
runOne(const BenchmarkProfile &profile, const MachineConfig &machine,
       const RunnerOptions &options, std::uint64_t seed)
{
    if (!options.materialize && !options.checkpoints)
        return runOne(profile, machine, options.instructions, seed,
                      options.warmup, options.obs);

    GridCache &cache = gridCache();
    Count length = options.instructions + options.warmup;
    GridCache::TracePtr trace = cache.trace(profile, seed, length);
    MaterializedCursor cursor(*trace);
    Simulator simulator(machine);
    if (options.warmup > 0) {
        if (options.checkpoints) {
            GridCache::SnapPtr snap = cache.checkpoint(
                profile, machine, seed, options.warmup, *trace);
            simulator.restore(*snap);
            cursor.seek(options.warmup);
        } else {
            simulator.consume(cursor, options.warmup);
            simulator.resetStats();
        }
    }
    if (options.obs.attached())
        simulator.attachObs(options.obs);
    SimResults result = simulator.run(cursor);

    if constexpr (kDebugBuild) {
        // Debug builds shadow every cached cell with the uncached
        // reference path: materialization and checkpoint-resume must
        // never change a single bit of any result.
        SimResults reference = runOne(profile, machine,
                                      options.instructions, seed,
                                      options.warmup);
        wbsim_assert(result == reference,
                     "cached grid cell diverged from the uncached "
                     "reference run (workload ",
                     profile.name, ", machine ", machine.describe(),
                     ")");
    }
    return result;
}

GridCacheStats
gridCacheStats()
{
    return gridCache().stats();
}

void
clearGridCaches()
{
    gridCache().clear();
}

ExperimentResults
runExperiment(const Experiment &experiment,
              const std::vector<BenchmarkProfile> &profiles,
              const RunnerOptions &options)
{
    const std::size_t benchmarks = profiles.size();
    const std::size_t variants = experiment.variants.size();
    ExperimentResults results(benchmarks,
                              std::vector<SimResults>(variants));
    parallelFor(benchmarks * variants, options.threads,
                [&](std::size_t index) {
                    std::size_t b = index / variants;
                    std::size_t v = index % variants;
                    results[b][v] =
                        runOne(profiles[b],
                               experiment.variants[v].machine,
                               options, options.seed);
                });
    return results;
}

std::vector<SimResults>
runReplicated(const BenchmarkProfile &profile,
              const MachineConfig &machine,
              const RunnerOptions &options, unsigned replicas)
{
    std::vector<SimResults> runs(replicas);
    parallelFor(replicas, options.threads, [&](std::size_t i) {
        runs[i] = runOne(profile, machine, options, options.seed + i);
    });
    return runs;
}

MetricSummary
summarizeMetric(const std::vector<SimResults> &runs,
                const std::function<double(const SimResults &)> &metric)
{
    MetricSummary summary;
    summary.n = runs.size();
    if (runs.empty())
        return summary;
    double sum = 0.0;
    for (const SimResults &r : runs)
        sum += metric(r);
    summary.mean = sum / double(runs.size());
    if (runs.size() > 1) {
        double ss = 0.0;
        for (const SimResults &r : runs) {
            double d = metric(r) - summary.mean;
            ss += d * d;
        }
        summary.sd = std::sqrt(ss / double(runs.size() - 1));
    }
    return summary;
}

} // namespace wbsim
