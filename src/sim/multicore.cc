#include "sim/multicore.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wbsim
{

namespace
{

/// Records pulled from a core's TraceSource per batch refill.
constexpr std::size_t kFeedBatch = 256;

std::vector<MachineConfig>
replicate(const MachineConfig &config)
{
    config.validate();
    return std::vector<MachineConfig>(std::max(1u, config.cores),
                                      config);
}

} // namespace

SimResults
MultiCoreResults::aggregate() const
{
    wbsim_assert(!perCore.empty(), "aggregating an empty system");
    SimResults r = perCore.front();
    for (std::size_t i = 1; i < perCore.size(); ++i) {
        const SimResults &c = perCore[i];
        r.instructions += c.instructions;
        r.cycles = std::max(r.cycles, c.cycles);
        r.loads += c.loads;
        r.stores += c.stores;
        r.stalls += c.stalls;
        r.l1LoadHits += c.l1LoadHits;
        r.l1LoadMisses += c.l1LoadMisses;
        r.l1StoreHits += c.l1StoreHits;
        r.l1StoreMisses += c.l1StoreMisses;
        r.wbMerges += c.wbMerges;
        r.wbAllocations += c.wbAllocations;
        r.wbRetirements += c.wbRetirements;
        r.wbFlushes += c.wbFlushes;
        r.wbHazards += c.wbHazards;
        r.wbServedLoads += c.wbServedLoads;
        r.wbWordsWritten += c.wbWordsWritten;
        r.wbEntriesWritten += c.wbEntriesWritten;
        r.wbMeanOccupancy += c.wbMeanOccupancy;
        r.l2ReadHits += c.l2ReadHits;
        r.l2ReadMisses += c.l2ReadMisses;
        r.l2WriteHits += c.l2WriteHits;
        r.l2WriteMisses += c.l2WriteMisses;
        r.memReads += c.memReads;
        r.memWriteBacks += c.memWriteBacks;
        r.ifetchMisses += c.ifetchMisses;
        r.l2IFetchStallCycles += c.l2IFetchStallCycles;
        r.barriers += c.barriers;
        r.barrierStallCycles += c.barrierStallCycles;
        r.storeFetches += c.storeFetches;
        r.storeFetchCycles += c.storeFetchCycles;
    }
    r.wbMeanOccupancy /= static_cast<double>(perCore.size());
    return r;
}

MultiCoreSystem::MultiCoreSystem(const MachineConfig &config)
    : MultiCoreSystem(replicate(config))
{
}

MultiCoreSystem::MultiCoreSystem(
    const std::vector<MachineConfig> &configs)
    : bus_(static_cast<unsigned>(
               std::max<std::size_t>(1, configs.size())),
           configs.empty() ? BusDiscipline::Fcfs
                           : configs.front().busDiscipline)
{
    wbsim_assert(!configs.empty(),
                 "a multi-core system needs at least one core");
    cores_.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        CoreState core;
        core.sim = std::make_unique<Simulator>(configs[i]);
        core.sim->attachBus(&bus_, static_cast<unsigned>(i));
        core.batch.resize(kFeedBatch);
        cores_.push_back(std::move(core));
    }
    wireHooks();
}

void
MultiCoreSystem::wireHooks()
{
    BusArbiter::CoreHooks hooks;
    hooks.clockOf = [this](unsigned i) {
        return cores_[i].sim->now();
    };
    hooks.stepOne = [this](unsigned i) { return stepOne(i); };
    bus_.setHooks(std::move(hooks));
}

void
MultiCoreSystem::attachObs(unsigned coreId, const obs::ObsSink &sink)
{
    wbsim_assert(coreId < cores_.size(),
                 "obs attach to an unknown core");
    cores_[coreId].sink = sink;
    // Already past the measurement boundary (warmup == 0 or a
    // mid-run attach): take effect immediately, like the single-core
    // harness attaching after resetStats().
    if (cores_[coreId].measuring && sink.attached())
        cores_[coreId].sim->attachObs(sink);
}

void
MultiCoreSystem::beginMeasurement(unsigned i)
{
    CoreState &core = cores_[i];
    core.sim->resetStats();
    core.busAtReset = bus_.coreStats(i);
    core.measuring = true;
    if (core.sink.attached())
        core.sim->attachObs(core.sink);
}

bool
MultiCoreSystem::stepOne(unsigned i)
{
    CoreState &core = cores_[i];
    if (core.exhausted || core.source == nullptr)
        return false;
    if (core.pos == core.have) {
        core.have = core.source->nextBatch(core.batch.data(),
                                           kFeedBatch);
        core.pos = 0;
        if (core.have == 0) {
            core.exhausted = true;
            return false;
        }
    }
    core.sim->step(core.batch[core.pos++]);
    // Each core crosses its warmup boundary at its own pace: under
    // contention the cores' clocks diverge, so a global boundary
    // would mix warmup and measured cycles on the faster cores.
    if (!core.measuring && core.sim->instructions() >= warmup_)
        beginMeasurement(i);
    return true;
}

MultiCoreResults
MultiCoreSystem::run(const std::vector<TraceSource *> &sources,
                     Count warmup)
{
    wbsim_assert(sources.size() == cores_.size(),
                 "one trace source per core required");
    warmup_ = warmup;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        wbsim_assert(sources[i] != nullptr, "null trace source");
        cores_[i].source = sources[i];
        cores_[i].workload = sources[i]->name();
        if (warmup == 0)
            beginMeasurement(static_cast<unsigned>(i));
    }

    // Min-clock schedule: always feed the core whose local clock is
    // furthest behind (ties to the lowest id), so no core runs ahead
    // of bus traffic that could contend with it. The bus arbiter
    // recursively advances lagging cores inside a step whenever a
    // grant needs the causality window closed.
    for (;;) {
        int best = -1;
        Cycle best_clock = 0;
        for (unsigned i = 0; i < cores_.size(); ++i) {
            if (cores_[i].exhausted)
                continue;
            Cycle t = cores_[i].sim->now();
            if (best < 0 || t < best_clock) {
                best = static_cast<int>(i);
                best_clock = t;
            }
        }
        if (best < 0)
            break;
        stepOne(static_cast<unsigned>(best));
    }

    // Drain in core id order; drains serialise through the bus like
    // any other write traffic.
    for (CoreState &core : cores_)
        core.sim->drain();

    MultiCoreResults out;
    out.discipline = bus_.discipline();
    out.perCore.reserve(cores_.size());
    out.bus.reserve(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        CoreState &core = cores_[i];
        wbsim_assert(core.measuring,
                     "a core never reached its warmup quota; "
                     "warmup must be shorter than the trace");
        out.perCore.push_back(core.sim->results(core.workload));
        const BusCoreStats &now =
            bus_.coreStats(static_cast<unsigned>(i));
        const BusCoreStats &base = core.busAtReset;
        BusCoreStats measured;
        measured.grants = now.grants - base.grants;
        measured.busyCycles = now.busyCycles - base.busyCycles;
        measured.waitCycles = now.waitCycles - base.waitCycles;
        measured.contendedGrants =
            now.contendedGrants - base.contendedGrants;
        out.bus.push_back(measured);
    }
    return out;
}

} // namespace wbsim
