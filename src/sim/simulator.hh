/**
 * @file
 * The cycle-level simulator of the paper's machine model (§2.1):
 * single-issue, blocking caches, write-through L1, coalescing write
 * buffer, and an L2 that is either perfect or real.
 *
 * The simulator is the only place timing decisions are made; caches
 * and buffers are functional models plus busy-interval resources.
 */

#ifndef WBSIM_SIM_SIMULATOR_HH
#define WBSIM_SIM_SIMULATOR_HH

#include <memory>

#include "core/store_buffer.hh"
#include "mem/l1_dcache.hh"
#include "mem/l1_icache.hh"
#include "mem/l2_cache.hh"
#include "mem/l2_port.hh"
#include "mem/main_memory.hh"
#include "obs/hooks.hh"
#include "obs/timeline.hh"
#include "sim/event_log.hh"
#include "sim/machine_config.hh"
#include "sim/results.hh"
#include "trace/source.hh"
#include "util/lint.hh"
#include "util/random.hh"

namespace wbsim
{

class MaterializedCursor;

/**
 * A bit-exact capture of one Simulator's complete mutable state:
 * tag stores, write-buffer contents and in-flight transactions, the
 * busy intervals of the L2 port and memory channel, clocks, RNG
 * streams, and every statistic. Produced by Simulator::snapshot();
 * Simulator::restore() replays it into any simulator built from the
 * same MachineConfig, any number of times (the grid runner forks
 * many measured runs off one warm image).
 *
 * Move-only. The embedded buffer clone is bound to the snapshot's
 * own port copy and is never advanced; it exists purely as a state
 * carrier for the next cloneRebound().
 */
struct SimSnapshot
{
    std::uint64_t configFingerprint = 0;
    L1DataCache l1d;
    L1ICache l1i;
    L2Cache l2;
    MainMemory memory;
    std::unique_ptr<L2Port> port;
    std::unique_ptr<StoreBuffer> buffer;
    Cycle cycle = 0;
    Cycle cycleBase = 0;
    Count instructions = 0;
    Count loads = 0;
    Count stores = 0;
    unsigned issueSlot = 0;
    Rng bubbleRng{0};
    StallStats stalls;
    Count ifetchMisses = 0;
    Count l2IFetchStallCycles = 0;
    Count barriers = 0;
    Count barrierStallCycles = 0;
    Count storeFetches = 0;
    Count storeFetchCycles = 0;
};

/** One simulated machine; run one trace through it. */
class Simulator
{
  public:
    explicit Simulator(const MachineConfig &config);

    /**
     * Consume @p source to exhaustion (or @p max_instructions) and
     * return the aggregated results. The write buffer is drained at
     * the end so all traffic is accounted. Records are pulled in
     * flat batches (TraceSource::nextBatch), so the per-record feed
     * cost is a copy/decode rather than a virtual call.
     */
    SimResults run(TraceSource &source, Count max_instructions = 0);

    /**
     * Execute exactly @p count records (fewer only if the source
     * ends), batched like run() but without draining or producing
     * results — the warmup half of a measured run.
     * @return records consumed.
     */
    Count consume(TraceSource &source, Count count);

    /** Execute a single record (exposed for fine-grained tests). */
    void step(const TraceRecord &record);

    /**
     * Capture all mutable state (see SimSnapshot). Typically taken
     * right after warmup + resetStats(), so restored runs begin at
     * the measurement boundary.
     */
    SimSnapshot snapshot() const;

    /**
     * Adopt the state in @p snap, which must come from a simulator
     * with an identical MachineConfig (checked by fingerprint). The
     * attached event log, if any, is kept.
     */
    void restore(const SimSnapshot &snap);

    /** @name Introspection for tests. */
    /// @{
    Cycle now() const { return cycle_; }
    const StallStats &stalls() const { return stalls_; }
    StoreBuffer &buffer() { return *buffer_; }
    L1DataCache &l1d() { return l1d_; }
    L2Cache &l2() { return l2_; }
    L2Port &port() { return port_; }
    MainMemory &memory() { return memory_; }
    Count instructions() const { return instructions_; }
    /// @}

    /** Drain the store buffer and advance time to completion. */
    void drain();

    /**
     * Attach a debug event log (nullptr detaches). The simulator
     * records loads, stores, stalls, hazards and write transfers;
     * the caller owns the log.
     */
    void attachEventLog(EventLog *log) { event_log_ = log; }

    /**
     * Route all of this core's L2 traffic through @p bus as
     * requester @p coreId (nullptr detaches; the default standalone
     * port is the paper's single-core machine, bit for bit).
     * Survives restore(). The MultiCoreSystem attaches every core
     * before feeding records.
     */
    void
    attachBus(BusArbiter *bus, unsigned coreId)
    {
        port_.attachBus(bus, coreId);
    }

    /**
     * Attach an observability sink: any combination of a metrics
     * registry, a cycle-attribution timeline, and an event log (all
     * optional, caller-owned). Null members detach the corresponding
     * channel; a default-constructed sink detaches everything and
     * every publish site reverts to a no-op. Survives restore():
     * the restored port and buffer are re-attached automatically.
     */
    void attachObs(const obs::ObsSink &sink);

    /**
     * Zero all statistics while keeping cache and buffer contents:
     * call after a warmup period so steady-state behaviour is
     * measured without compulsory-miss pollution.
     */
    void resetStats();

    /** Snapshot results so far (drain() first for exact totals). */
    SimResults results(const std::string &workload) const;

  private:
    MachineConfig config_;
    Cycle l2_transfer_cycles_;

    L1DataCache l1d_;
    L1ICache l1i_;
    L2Cache l2_;
    L2Port port_;
    MainMemory memory_;
    std::unique_ptr<StoreBuffer> buffer_;

    /** Per-record work outside the op handlers is pure issue
     *  arithmetic (perfect I-cache, no bubble RNG draws), so
     *  runBatch may decode per-op runs and skip NonMem runs in
     *  O(1). Fixed by the config at construction. */
    bool batch_runs_ok_;

    Cycle cycle_ = 0;
    Cycle cycle_base_ = 0;
    Count instructions_ = 0;
    Count loads_ = 0;
    Count stores_ = 0;
    unsigned issue_slot_ = 0;
    Rng bubble_rng_{0xb0bb1e};

    StallStats stalls_;
    Count ifetch_misses_ = 0;
    Count l2_ifetch_stall_cycles_ = 0;
    Count barriers_ = 0;
    Count barrier_stall_cycles_ = 0;
    Count store_fetches_ = 0;
    Count store_fetch_cycles_ = 0;
    EventLog *event_log_ = nullptr;

    /** @name Observability sinks (null = detached = no-op). */
    /// @{
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::Timeline *timeline_ = nullptr;
    obs::MetricId m_stall_full_ = 0;   //!< buffer-full stall durations
    obs::MetricId m_stall_read_ = 0;   //!< read-access wait durations
    obs::MetricId m_stall_hazard_ = 0; //!< hazard-resolution latencies
    obs::MetricId m_stall_barrier_ = 0; //!< barrier-drain durations
    /// @}

    /** The L2 write callback handed to store-buffer instances. */
    L2WriteHook makeL2WriteHook();

    /** Record an event if a log is attached. */
    void note(SimEventKind kind, Addr addr = 0, Count a = 0,
              Count b = 0)
    {
        if (event_log_)
            event_log_->record(cycle_, kind, addr, a, b);
    }

    /** Charge the issue cost of one instruction. */
    void advanceIssue();

    /**
     * Execute @p count records decoded into per-op index runs: one
     * `switch(op)` per run instead of per record, monomorphic inner
     * loops per op, and an O(1) arithmetic skip for NonMem runs.
     * The run decode applies only when the per-record path would be
     * pure issue arithmetic (perfect I-cache, no bubbles, checked
     * once at construction); otherwise every record goes through
     * step()'s logic unchanged, so results are bit-identical either
     * way.
     */
    void runBatch(const TraceRecord *batch, std::size_t count);

    /**
     * Feed loop over MaterializedCursor::nextRuns(): the decoder
     * hands NonMem runs as counts (the stream's native run-prefix
     * shape), so the batched dispatch neither materializes filler
     * records nor re-discovers run boundaries by scanning ops — the
     * boundary-scan branch was the single largest cost of the
     * record-path runBatch(). Only entered when batch_runs_ok_
     * (NonMem records are pure issue arithmetic, charged via
     * skipNonMemRun exactly as runBatch does), so results are
     * bit-identical to the record path.
     */
    void runFromRuns(MaterializedCursor &cursor);

    /** advanceIssue() for the batched fast path: no bubble draw
     *  (the path is gated on bubbleProbability <= 0). */
    void
    advanceIssueFast()
    {
        if (++issue_slot_ >= config_.issueWidth) {
            issue_slot_ = 0;
            ++cycle_;
        }
    }

    /**
     * Charge a run of @p count back-to-back NonMem instructions in
     * O(1): the same division advanceIssueFast() performs one
     * increment at a time, so cycle_ and issue_slot_ land exactly
     * where @p count advanceIssueFast() calls would leave them.
     */
    void
    skipNonMemRun(Count count)
    {
        instructions_ += count;
        Count slots = issue_slot_ + count;
        cycle_ += slots / config_.issueWidth;
        issue_slot_ = static_cast<unsigned>(slots % config_.issueWidth);
    }

    /** §2.2 ordering instruction: drain the buffer, stall the CPU. */
    void doBarrier();

    /** Functional-and-timing L2 write callback for the buffer. */
    Cycle l2Write(Addr base, unsigned valid_words, unsigned total_words,
                  Cycle start);

    /** Handle an instruction fetch (real-I-cache extension). */
    void fetch(Addr pc);

    void doLoad(Addr addr, unsigned size);
    void doStore(Addr addr, unsigned size);

    /** Perform a demand L2 read at @p earliest, charging port waits
     *  to the given stall counters (including the longest-episode
     *  high-water mark) and attributing any wait to @p channel on
     *  the timeline. @return data-ready cycle. */
    Cycle l2DemandRead(Addr addr, Cycle earliest, Count &stall_cycles,
                       Count &stall_events, Count &max_episode,
                       obs::Channel channel
                       = obs::Channel::ReadAccessStall);

    /** The one publish site for the read-access-stall handle
     *  (WL-PUB-UNIQUE): port waits and write-priority drains both
     *  report through it, attributing the wait to @p channel. */
    WBSIM_HOT void
    publishReadStall(Cycle at, Cycle wait, obs::Channel channel)
    {
        if (metrics_ != nullptr)
            metrics_->sample(m_stall_read_, wait);
        if (timeline_ != nullptr)
            timeline_->add(channel, at, wait);
    }
};

} // namespace wbsim

#endif // WBSIM_SIM_SIMULATOR_HH
