/**
 * @file
 * The cycle-level simulator of the paper's machine model (§2.1):
 * single-issue, blocking caches, write-through L1, coalescing write
 * buffer, and an L2 that is either perfect or real.
 *
 * The simulator is the only place timing decisions are made; caches
 * and buffers are functional models plus busy-interval resources.
 */

#ifndef WBSIM_SIM_SIMULATOR_HH
#define WBSIM_SIM_SIMULATOR_HH

#include <memory>

#include "core/store_buffer.hh"
#include "mem/l1_dcache.hh"
#include "mem/l1_icache.hh"
#include "mem/l2_cache.hh"
#include "mem/l2_port.hh"
#include "mem/main_memory.hh"
#include "sim/event_log.hh"
#include "sim/machine_config.hh"
#include "sim/results.hh"
#include "trace/source.hh"
#include "util/random.hh"

namespace wbsim
{

/** One simulated machine; run one trace through it. */
class Simulator
{
  public:
    explicit Simulator(const MachineConfig &config);

    /**
     * Consume @p source to exhaustion (or @p max_instructions) and
     * return the aggregated results. The write buffer is drained at
     * the end so all traffic is accounted.
     */
    SimResults run(TraceSource &source, Count max_instructions = 0);

    /** Execute a single record (exposed for fine-grained tests). */
    void step(const TraceRecord &record);

    /** @name Introspection for tests. */
    /// @{
    Cycle now() const { return cycle_; }
    const StallStats &stalls() const { return stalls_; }
    StoreBuffer &buffer() { return *buffer_; }
    L1DataCache &l1d() { return l1d_; }
    L2Cache &l2() { return l2_; }
    L2Port &port() { return port_; }
    MainMemory &memory() { return memory_; }
    Count instructions() const { return instructions_; }
    /// @}

    /** Drain the store buffer and advance time to completion. */
    void drain();

    /**
     * Attach a debug event log (nullptr detaches). The simulator
     * records loads, stores, stalls, hazards and write transfers;
     * the caller owns the log.
     */
    void attachEventLog(EventLog *log) { event_log_ = log; }

    /**
     * Zero all statistics while keeping cache and buffer contents:
     * call after a warmup period so steady-state behaviour is
     * measured without compulsory-miss pollution.
     */
    void resetStats();

    /** Snapshot results so far (drain() first for exact totals). */
    SimResults results(const std::string &workload) const;

  private:
    MachineConfig config_;
    Cycle l2_transfer_cycles_;

    L1DataCache l1d_;
    L1ICache l1i_;
    L2Cache l2_;
    L2Port port_;
    MainMemory memory_;
    std::unique_ptr<StoreBuffer> buffer_;

    Cycle cycle_ = 0;
    Cycle cycle_base_ = 0;
    Count instructions_ = 0;
    Count loads_ = 0;
    Count stores_ = 0;
    unsigned issue_slot_ = 0;
    Rng bubble_rng_{0xb0bb1e};

    StallStats stalls_;
    Count ifetch_misses_ = 0;
    Count l2_ifetch_stall_cycles_ = 0;
    Count barriers_ = 0;
    Count barrier_stall_cycles_ = 0;
    Count store_fetches_ = 0;
    Count store_fetch_cycles_ = 0;
    EventLog *event_log_ = nullptr;

    /** Record an event if a log is attached. */
    void note(SimEventKind kind, Addr addr = 0, Count a = 0,
              Count b = 0)
    {
        if (event_log_)
            event_log_->record(cycle_, kind, addr, a, b);
    }

    /** Charge the issue cost of one instruction. */
    void advanceIssue();

    /** Functional-and-timing L2 write callback for the buffer. */
    Cycle l2Write(Addr base, unsigned valid_words, unsigned total_words,
                  Cycle start);

    /** Handle an instruction fetch (real-I-cache extension). */
    void fetch(Addr pc);

    void doLoad(Addr addr, unsigned size);
    void doStore(Addr addr, unsigned size);

    /** Perform a demand L2 read at @p earliest, charging port waits
     *  to the given stall counters. @return data-ready cycle. */
    Cycle l2DemandRead(Addr addr, Cycle earliest, Count &stall_cycles,
                       Count &stall_events);
};

} // namespace wbsim

#endif // WBSIM_SIM_SIMULATOR_HH
