#include "sim/event_log.hh"

#include <sstream>

#include "util/logging.hh"

namespace wbsim
{

const char *
simEventKindName(SimEventKind kind)
{
    switch (kind) {
      case SimEventKind::LoadHit:
        return "load-hit";
      case SimEventKind::LoadMiss:
        return "load-miss";
      case SimEventKind::Store:
        return "store";
      case SimEventKind::BufferFullStall:
        return "buffer-full-stall";
      case SimEventKind::ReadAccessStall:
        return "read-access-stall";
      case SimEventKind::Hazard:
        return "hazard";
      case SimEventKind::WbWrite:
        return "wb-write";
      case SimEventKind::Barrier:
        return "barrier";
      case SimEventKind::IFetchMiss:
        return "ifetch-miss";
    }
    return "?";
}

std::string
toString(const SimEventRecord &event)
{
    std::ostringstream os;
    os << "@" << event.cycle << " " << simEventKindName(event.kind);
    if (event.addr)
        os << " addr=0x" << std::hex << event.addr << std::dec;
    if (event.a)
        os << " a=" << event.a;
    if (event.b)
        os << " b=" << event.b;
    return os.str();
}

EventLog::EventLog(std::size_t capacity)
    : ring_(capacity)
{
    wbsim_assert(capacity > 0, "event log needs capacity");
}

void
EventLog::record(Cycle cycle, SimEventKind kind, Addr addr, Count a,
                 Count b)
{
    ring_[head_] = SimEventRecord{cycle, kind, addr, a, b};
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size())
        ++count_;
    ++recorded_;
}

std::size_t
EventLog::size() const
{
    return count_;
}

Count
EventLog::dropped() const
{
    return recorded_ - count_;
}

const SimEventRecord &
EventLog::at(std::size_t i) const
{
    wbsim_assert(i < count_, "event log index out of range");
    std::size_t oldest = (head_ + ring_.size() - count_) % ring_.size();
    return ring_[(oldest + i) % ring_.size()];
}

std::vector<SimEventRecord>
EventLog::ofKind(SimEventKind kind) const
{
    std::vector<SimEventRecord> matches;
    for (std::size_t i = 0; i < count_; ++i)
        if (at(i).kind == kind)
            matches.push_back(at(i));
    return matches;
}

void
EventLog::dump(std::ostream &os) const
{
    if (dropped() > 0)
        os << "(... " << dropped() << " earlier events dropped)\n";
    for (std::size_t i = 0; i < count_; ++i)
        os << toString(at(i)) << "\n";
}

void
EventLog::clear()
{
    head_ = 0;
    count_ = 0;
    recorded_ = 0;
}

} // namespace wbsim
