/**
 * @file
 * Full machine configuration: the paper's Table 1 parameters, the
 * write buffer (Table 2), and the §4 sensitivity/extension knobs.
 */

#ifndef WBSIM_SIM_MACHINE_CONFIG_HH
#define WBSIM_SIM_MACHINE_CONFIG_HH

#include <string>

#include "core/config.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "util/types.hh"

namespace wbsim
{

/** Configuration of the simulated machine. */
struct MachineConfig
{
    /** L1 data cache: 8K direct-mapped, 32B lines, write-through,
     *  write-around (Table 1). Size varies in Figure 10. */
    CacheGeometry l1d{8 * 1024, 32, 1};

    /** Perfect I-cache by default (Table 1); real mode is the §4.3
     *  L2-I-fetch extension. */
    bool perfectICache = true;
    CacheGeometry l1i{8 * 1024, 32, 1};

    /** Perfect L2 by default (Table 1); real sizes in Figure 12.
     *  The paper does not state an L2 associativity; we default to
     *  4-way (documented substitution, DESIGN.md §3). */
    bool perfectL2 = true;
    CacheGeometry l2{1024 * 1024, 32, 4};

    /** L2 access latency; 6 in the baseline, varied in Figure 11. */
    Cycle l2Latency = 6;

    /** Main memory latency; 25 or 50 in Figure 13. */
    Cycle memLatency = 25;

    /** Bytes transferred to/from L2 per cycle beat. A full line in
     *  the baseline; half-line datapaths (§4.3) make every transfer
     *  longer. */
    unsigned l2DatapathBytes = 32;

    /** Instructions issued per cycle (§4.3 superscalar knob). */
    unsigned issueWidth = 1;

    /** Probability of a one-cycle pipeline bubble after an
     *  instruction (§4.3 data-dependency knob). */
    double bubbleProbability = 0.0;

    /**
     * L1 write-miss policy: false = write-around (the paper's
     * machine, Table 1), true = write-allocate (fetch the line
     * through L2 on a store miss, then write it). The
     * cache-write-policy axis of Jouppi's study the paper builds
     * on; ablation A14.
     */
    bool l1WriteAllocate = false;

    /** The write buffer (Table 2). */
    WriteBufferConfig writeBuffer;

    /**
     * Cores sharing the L2 through the arbitrated bus. 1 (the
     * paper's machine) keeps the legacy private-port path, bit for
     * bit; above 1 every core gets its own L1s + store buffer and
     * all L2 traffic serialises through a BusArbiter (DESIGN.md
     * §14).
     */
    unsigned cores = 1;

    /** Bus service discipline; only meaningful when cores > 1 (a
     *  single core never contends, so the field is inert — and
     *  excluded from the fingerprint — at cores == 1). */
    BusDiscipline busDiscipline = BusDiscipline::Fcfs;

    /** Cycles one L2 transfer occupies the port. */
    Cycle l2TransferCycles() const;

    /**
     * Hash of every field. In this simulator timing feeds back into
     * functional state (retirement timing decides coalescing, which
     * decides the L2 write stream), so *every* field can affect the
     * machine state reached after a warmup prefix; the grid runner
     * therefore keys warm-state checkpoint reuse on this full
     * fingerprint, and Simulator::restore() uses it as a
     * compatibility check.
     */
    std::uint64_t stateFingerprint() const;

    /** fatal() on inconsistent parameters. */
    void validate() const;

    /** Non-fatal validate(): the first inconsistency, or "" when the
     *  configuration is sound. wbsim-serve validates every
     *  network-supplied machine through this before simulating. */
    std::string validationError() const;

    /** Short identity for reports. */
    std::string describe() const;
};

} // namespace wbsim

#endif // WBSIM_SIM_MACHINE_CONFIG_HH
