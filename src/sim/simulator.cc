#include "sim/simulator.hh"

#include "core/write_buffer.hh"

#include <algorithm>

#include "util/bits.hh"
#include "core/write_cache.hh"
#include "obs/metrics.hh"
#include "trace/materialized_trace.hh"
#include "util/logging.hh"

namespace wbsim
{

Simulator::Simulator(const MachineConfig &config)
    : config_(config),
      l2_transfer_cycles_(config.l2TransferCycles()),
      l1d_(config.l1d),
      l1i_(config.perfectICache ? L1ICache() : L1ICache(config.l1i)),
      l2_(config.perfectL2 ? L2Cache() : L2Cache(config.l2)),
      memory_(config.memLatency),
      batch_runs_ok_(config.perfectICache
                     && config.bubbleProbability <= 0.0)
{
    config_.validate();
    auto line = static_cast<unsigned>(config_.l1d.lineBytes);
    if (config_.writeBuffer.kind == BufferKind::WriteCache) {
        buffer_ = std::make_unique<WriteCache>(config_.writeBuffer,
                                               port_, makeL2WriteHook(),
                                               line);
    } else {
        buffer_ = std::make_unique<WriteBuffer>(config_.writeBuffer,
                                                port_, makeL2WriteHook(),
                                                line);
    }
}

void
Simulator::attachObs(const obs::ObsSink &sink)
{
    event_log_ = sink.eventLog;
    timeline_ = sink.timeline;
    metrics_ = sink.metrics;
    if (metrics_ != nullptr) {
        // Stall durations cluster near the L2/memory latencies;
        // 4-cycle buckets over 0..255 resolve them and the overflow
        // bucket absorbs long barrier-style drains.
        m_stall_full_ = metrics_->histogram("sim.stall.buffer_full",
                                            64, 4);
        m_stall_read_ = metrics_->histogram("sim.stall.read_access",
                                            64, 4);
        m_stall_hazard_ = metrics_->histogram("sim.stall.hazard", 64, 4);
        m_stall_barrier_ = metrics_->histogram("sim.stall.barrier",
                                               64, 4);
    }
    buffer_->attachMetrics(metrics_);
    port_.attachMetrics(metrics_);
}

L2WriteHook
Simulator::makeL2WriteHook()
{
    return [this](Addr base, unsigned valid_words, unsigned total_words,
                  Cycle start) {
        return l2Write(base, valid_words, total_words, start);
    };
}

SimSnapshot
Simulator::snapshot() const
{
    SimSnapshot snap{config_.stateFingerprint(),
                     l1d_,
                     l1i_,
                     l2_,
                     memory_,
                     std::make_unique<L2Port>(port_),
                     nullptr,
                     cycle_,
                     cycle_base_,
                     instructions_,
                     loads_,
                     stores_,
                     issue_slot_,
                     bubble_rng_,
                     stalls_,
                     ifetch_misses_,
                     l2_ifetch_stall_cycles_,
                     barriers_,
                     barrier_stall_cycles_,
                     store_fetches_,
                     store_fetch_cycles_};
    // The stored clone is a state carrier only; it must never run,
    // so its write hook traps.
    snap.buffer = buffer_->cloneRebound(
        *snap.port, [](Addr, unsigned, unsigned, Cycle) -> Cycle {
            wbsim_panic("a snapshot's buffer clone performed an L2 "
                        "write; snapshots must not be advanced");
        });
    return snap;
}

void
Simulator::restore(const SimSnapshot &snap)
{
    wbsim_assert(snap.configFingerprint == config_.stateFingerprint(),
                 "snapshot restored into a different machine config");
    l1d_ = snap.l1d;
    l1i_ = snap.l1i;
    l2_ = snap.l2;
    memory_ = snap.memory;
    // The snapshot's port copy carries its creator's bus attachment;
    // this simulator's own attachment (usually none) wins.
    BusArbiter *bus = port_.bus();
    unsigned bus_core = port_.busCoreId();
    port_ = *snap.port;
    port_.attachBus(bus, bus_core);
    buffer_ = snap.buffer->cloneRebound(port_, makeL2WriteHook());
    cycle_ = snap.cycle;
    cycle_base_ = snap.cycleBase;
    instructions_ = snap.instructions;
    loads_ = snap.loads;
    stores_ = snap.stores;
    issue_slot_ = snap.issueSlot;
    bubble_rng_ = snap.bubbleRng;
    stalls_ = snap.stalls;
    ifetch_misses_ = snap.ifetchMisses;
    l2_ifetch_stall_cycles_ = snap.l2IFetchStallCycles;
    barriers_ = snap.barriers;
    barrier_stall_cycles_ = snap.barrierStallCycles;
    store_fetches_ = snap.storeFetches;
    store_fetch_cycles_ = snap.storeFetchCycles;
    // The copied port carries the snapshot creator's metrics pointer
    // and the buffer clone starts detached; re-attach both to this
    // simulator's sink (idempotent; nullptr detaches).
    port_.attachMetrics(metrics_);
    buffer_->attachMetrics(metrics_);
}

Cycle
Simulator::l2Write(Addr base, unsigned valid_words, unsigned total_words,
                   Cycle start)
{
    // Transfer time scales with the entry's width over the datapath
    // (identical to the fixed line transfer for line-wide entries).
    std::uint64_t entry_bytes =
        std::uint64_t{total_words} * config_.writeBuffer.wordBytes;
    Cycle duration = config_.l2Latency
        + (divCeil(std::max<std::uint64_t>(entry_bytes,
                                           config_.l2DatapathBytes),
                   config_.l2DatapathBytes)
           - 1);
    bool full_line = valid_words == total_words
        && config_.writeBuffer.entryBytes >= config_.l1d.lineBytes;
    L2Outcome outcome = l2_.write(base, full_line);
    if (outcome.memoryFetch) {
        // Fetch-on-write merge for a partial line that misses L2.
        // The paper charges every retirement a fixed L2 transfer
        // (Table 1), so the merge fetch proceeds in the background:
        // it occupies the memory channel (delaying later demand
        // fetches) but not the L2 port (DESIGN.md §3).
        memory_.read(start + config_.l2Latency);
    }
    if (outcome.dirtyWriteBack)
        memory_.writeBack(start + duration);
    for (Addr addr : outcome.invalidations)
        l1d_.invalidate(addr);
    if (event_log_)
        event_log_->record(start, SimEventKind::WbWrite, base,
                           valid_words);
    if (timeline_ != nullptr)
        timeline_->add(obs::Channel::WbWords, start, valid_words);
    return duration;
}

void
Simulator::advanceIssue()
{
    if (++issue_slot_ >= config_.issueWidth) {
        issue_slot_ = 0;
        ++cycle_;
    }
    if (config_.bubbleProbability > 0.0
        && bubble_rng_.nextBool(config_.bubbleProbability)) {
        ++cycle_;
    }
}

void
Simulator::fetch(Addr pc)
{
    if (l1i_.fetch(pc))
        return;
    ++ifetch_misses_;
    note(SimEventKind::IFetchMiss, pc);
    if (!buffer_->quiescent())
        buffer_->advanceTo(cycle_);
    // An I-fetch miss reads L2 like a data miss; waiting on a write
    // is the §4.3 "L2-I-fetch stall" category, tracked separately
    // from the paper's three data-side categories.
    Count events_unused = 0;
    Count max_unused = 0;
    cycle_ = l2DemandRead(pc, cycle_, l2_ifetch_stall_cycles_,
                          events_unused, max_unused,
                          obs::Channel::IFetchStall);
    l1i_.fill(pc);
}

Cycle
Simulator::l2DemandRead(Addr addr, Cycle earliest, Count &stall_cycles,
                        Count &stall_events, Count &max_episode,
                        obs::Channel channel)
{
    Cycle t = earliest;
    Cycle start;
    if (!port_.busArbitrated()) {
        if (port_.busyAt(t)) {
            // Blocking caches mean a previous demand read always
            // finished before the CPU resumed, so any occupancy here
            // is a write-buffer transaction: an L2-read-access stall.
            wbsim_assert(port_.writeUnderwayAt(t),
                         "demand read blocked by another read");
            Cycle wait = port_.freeAt() - t;
            stall_cycles += wait;
            ++stall_events;
            max_episode = std::max<Count>(max_episode, wait);
            note(SimEventKind::ReadAccessStall, addr, wait);
            publishReadStall(t, wait, channel);
            t = port_.freeAt();
        }
        start = port_.begin(L2Txn::Read, t, config_.l2Latency);
        wbsim_assert(start == t, "demand read start raced the L2 port");
    } else {
        // Shared bus: the wait is only known after arbitration (a
        // lagging core may slip in ahead), and the blocker may be
        // another core's read, not just a write. Either way the CPU
        // sat waiting for L2 read service: an L2-read-access stall,
        // now inflated by contention (the fig_mc_bus axis).
        start = port_.begin(L2Txn::Read, t, config_.l2Latency);
        if (start > t) {
            Cycle wait = start - t;
            stall_cycles += wait;
            ++stall_events;
            max_episode = std::max<Count>(max_episode, wait);
            note(SimEventKind::ReadAccessStall, addr, wait);
            publishReadStall(t, wait, channel);
        }
    }
    Cycle done = start + config_.l2Latency;
    L2Outcome outcome = l2_.read(addr);
    if (outcome.memoryFetch) {
        // The L2 port is released during the memory access (§4.2):
        // the write buffer may retire meanwhile.
        done = memory_.read(done);
    }
    if (outcome.dirtyWriteBack)
        memory_.writeBack(done);
    for (Addr line : outcome.invalidations)
        l1d_.invalidate(line);
    return done;
}

void
Simulator::doStore(Addr addr, unsigned size)
{
    ++stores_;
    bool l1_hit = l1d_.store(addr); // write-through (functional)
    if (!l1_hit && config_.l1WriteAllocate) {
        // Write-allocate: fetch the line through L2 before writing.
        // If the block is active in the write buffer the fill merges
        // its words for free, exactly as a read-from-WB word-miss
        // fill does (§2.2); no flush is needed.
        ++store_fetches_;
        if (!buffer_->quiescent())
            buffer_->advanceTo(cycle_);
        // The fetch is a demand read: waiting behind an underway
        // write is an L2-read-access stall (Table 3), exactly as on
        // the load-miss path.
        Cycle done = l2DemandRead(addr, cycle_,
                                  stalls_.l2ReadAccessCycles,
                                  stalls_.l2ReadAccessEvents,
                                  stalls_.l2ReadAccessMaxEpisode);
        store_fetch_cycles_ += done - cycle_;
        cycle_ = done;
        l1d_.fill(addr);
    }
    note(SimEventKind::Store, addr);
    Count full_before = stalls_.bufferFullCycles;
    cycle_ = buffer_->store(addr, size, cycle_, stalls_);
    Count full_delta = stalls_.bufferFullCycles - full_before;
    if (full_delta != 0) {
        note(SimEventKind::BufferFullStall, addr, full_delta);
        if (metrics_ != nullptr)
            metrics_->sample(m_stall_full_, full_delta);
        if (timeline_ != nullptr)
            timeline_->add(obs::Channel::BufferFullStall, cycle_,
                           full_delta);
    }
    if (timeline_ != nullptr) {
        timeline_->add(obs::Channel::Stores, cycle_, 1);
        timeline_->add(obs::Channel::OccupancySum, cycle_,
                       buffer_->occupancy());
    }
}

void
Simulator::doLoad(Addr addr, unsigned size)
{
    ++loads_;
    if (l1d_.load(addr)) {
        note(SimEventKind::LoadHit, addr);
        return; // 1-cycle hit: the issue cycle already charged
    }
    note(SimEventKind::LoadMiss, addr);

    if (!buffer_->quiescent())
        buffer_->advanceTo(cycle_);

    // UltraSPARC-style priority inversion: above the threshold the
    // buffer drains below it before the read may proceed.
    unsigned threshold = config_.writeBuffer.writePriorityThreshold;
    if (threshold != 0 && buffer_->occupancy() >= threshold) {
        Cycle t = buffer_->drainBelow(threshold, cycle_);
        if (t > cycle_) {
            Cycle wait = t - cycle_;
            stalls_.l2ReadAccessCycles += wait;
            ++stalls_.l2ReadAccessEvents;
            stalls_.l2ReadAccessMaxEpisode =
                std::max<Count>(stalls_.l2ReadAccessMaxEpisode, wait);
            publishReadStall(cycle_, wait,
                             obs::Channel::ReadAccessStall);
            cycle_ = t;
        }
    }

    LoadProbe probe = buffer_->probeLoad(addr, size);
    if (probe.blockHit) {
        HazardResult hazard =
            buffer_->handleLoadHazard(probe, addr, size, cycle_);
        note(SimEventKind::Hazard, addr, hazard.done - cycle_,
             hazard.servedFromBuffer ? 1 : 0);
        if (hazard.done > cycle_) {
            Cycle wait = hazard.done - cycle_;
            stalls_.loadHazardCycles += wait;
            ++stalls_.loadHazardEvents;
            stalls_.loadHazardMaxEpisode =
                std::max<Count>(stalls_.loadHazardMaxEpisode, wait);
            if (metrics_ != nullptr)
                metrics_->sample(m_stall_hazard_, wait);
            if (timeline_ != nullptr)
                timeline_->add(obs::Channel::HazardStall, cycle_, wait);
        }
        cycle_ = hazard.done;
        if (hazard.servedFromBuffer)
            return; // as fast as an L1 hit; no fill, no L2 access
    }

    cycle_ = l2DemandRead(addr, cycle_, stalls_.l2ReadAccessCycles,
                          stalls_.l2ReadAccessEvents,
                          stalls_.l2ReadAccessMaxEpisode);
    l1d_.fill(addr);
}

void
Simulator::step(const TraceRecord &record)
{
    ++instructions_;
    advanceIssue();
    if (!config_.perfectICache)
        fetch(record.pc);
    switch (record.op) {
      case Op::NonMem:
        break;
      case Op::Load:
        doLoad(record.addr, record.size);
        break;
      case Op::Store:
        doStore(record.addr, record.size);
        break;
      case Op::Barrier:
        doBarrier();
        break;
    }
}

void
Simulator::doBarrier()
{
    // §2.2: ordering instructions drain the buffer; the CPU stalls
    // until every buffered write is in L2.
    ++barriers_;
    Cycle done = buffer_->drainBelow(1, cycle_);
    note(SimEventKind::Barrier, 0, done - cycle_);
    if (done > cycle_) {
        Cycle wait = done - cycle_;
        barrier_stall_cycles_ += wait;
        if (metrics_ != nullptr)
            metrics_->sample(m_stall_barrier_, wait);
        if (timeline_ != nullptr)
            timeline_->add(obs::Channel::BarrierStall, cycle_, wait);
        cycle_ = done;
    }
}

void
Simulator::runBatch(const TraceRecord *batch, std::size_t count)
{
    if (!batch_runs_ok_) {
        // Real I-cache or bubble RNG: every record carries per-record
        // work beyond issue arithmetic, so run decoding buys nothing.
        for (std::size_t i = 0; i < count; ++i)
            step(batch[i]);
        return;
    }
    std::size_t i = 0;
    while (i < count) {
        const Op op = batch[i].op;
        std::size_t j = i + 1;
        while (j < count && batch[j].op == op)
            ++j;
        switch (op) {
          case Op::NonMem:
            skipNonMemRun(j - i);
            break;
          case Op::Load:
            for (std::size_t k = i; k < j; ++k) {
                ++instructions_;
                advanceIssueFast();
                doLoad(batch[k].addr, batch[k].size);
            }
            break;
          case Op::Store:
            for (std::size_t k = i; k < j; ++k) {
                ++instructions_;
                advanceIssueFast();
                doStore(batch[k].addr, batch[k].size);
            }
            break;
          case Op::Barrier:
            for (std::size_t k = i; k < j; ++k) {
                ++instructions_;
                advanceIssueFast();
                doBarrier();
            }
            break;
        }
        i = j;
    }
}

namespace
{

/// Records (or run items) pulled from a TraceSource per batch refill.
constexpr std::size_t kFeedBatch = 256;

} // namespace

void
Simulator::runFromRuns(MaterializedCursor &cursor)
{
    TraceRun runs[kFeedBatch];
    std::size_t got;
    while ((got = cursor.nextRuns(runs, kFeedBatch)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            const TraceRun &item = runs[i];
            switch (item.rec.op) {
              case Op::NonMem:
                // Carrier item: the record itself is one more plain
                // NonMem instruction; fold it into the run charge.
                skipNonMemRun(item.nonMemBefore + Count{1});
                break;
              case Op::Load:
                if (item.nonMemBefore != 0)
                    skipNonMemRun(item.nonMemBefore);
                ++instructions_;
                advanceIssueFast();
                doLoad(item.rec.addr, item.rec.size);
                break;
              case Op::Store:
                if (item.nonMemBefore != 0)
                    skipNonMemRun(item.nonMemBefore);
                ++instructions_;
                advanceIssueFast();
                doStore(item.rec.addr, item.rec.size);
                break;
              case Op::Barrier:
                if (item.nonMemBefore != 0)
                    skipNonMemRun(item.nonMemBefore);
                ++instructions_;
                advanceIssueFast();
                doBarrier();
                break;
            }
        }
    }
}

void
Simulator::drain()
{
    if (!buffer_->quiescent())
        buffer_->advanceTo(cycle_);
    cycle_ = std::max(cycle_, buffer_->drainBelow(1, cycle_));
}

void
Simulator::resetStats()
{
    cycle_base_ = cycle_;
    instructions_ = 0;
    loads_ = 0;
    stores_ = 0;
    stalls_ = StallStats{};
    ifetch_misses_ = 0;
    l2_ifetch_stall_cycles_ = 0;
    barriers_ = 0;
    barrier_stall_cycles_ = 0;
    store_fetches_ = 0;
    store_fetch_cycles_ = 0;
    l1d_.resetStats();
    l1i_.resetStats();
    l2_.resetStats();
    memory_.resetStats();
    buffer_->resetStats();
}

SimResults
Simulator::results(const std::string &workload) const
{
    SimResults r;
    r.workload = workload;
    r.machine = config_.describe();
    r.instructions = instructions_;
    r.cycles = cycle_ - cycle_base_;
    r.loads = loads_;
    r.stores = stores_;
    r.stalls = stalls_;
    r.l1LoadHits = l1d_.loadHits();
    r.l1LoadMisses = l1d_.loadMisses();
    r.l1StoreHits = l1d_.storeHits();
    r.l1StoreMisses = l1d_.storeMisses();
    const StoreBufferStats &bs = buffer_->stats();
    r.wbMerges = bs.merges;
    r.wbAllocations = bs.allocations;
    r.wbRetirements = bs.retirements;
    r.wbFlushes = bs.flushes;
    r.wbHazards = bs.hazards;
    r.wbServedLoads = bs.wbServedLoads;
    r.wbWordsWritten = bs.wordsWritten;
    r.wbEntriesWritten = bs.entriesWritten;
    r.wbMeanOccupancy = bs.occupancy.mean();
    r.l2ReadHits = l2_.readHits();
    r.l2ReadMisses = l2_.readMisses();
    r.l2WriteHits = l2_.writeHits();
    r.l2WriteMisses = l2_.writeMisses();
    r.memReads = memory_.reads();
    r.memWriteBacks = memory_.writeBacks();
    r.ifetchMisses = ifetch_misses_;
    r.l2IFetchStallCycles = l2_ifetch_stall_cycles_;
    r.barriers = barriers_;
    r.barrierStallCycles = barrier_stall_cycles_;
    r.storeFetches = store_fetches_;
    r.storeFetchCycles = store_fetch_cycles_;
    return r;
}

SimResults
Simulator::run(TraceSource &source, Count max_instructions)
{
    // Materialized traces feed run items (run-length counts plus one
    // record) straight from the encoding, skipping both the filler
    // materialization and runBatch's op boundary scan. Limited runs
    // keep the record path: a run item is not splittable at an
    // instruction quota.
    if (batch_runs_ok_ && max_instructions == 0) {
        if (auto *cursor = dynamic_cast<MaterializedCursor *>(&source)) {
            runFromRuns(*cursor);
            drain();
            return results(source.name());
        }
    }

    TraceRecord batch[kFeedBatch];
    for (;;) {
        std::size_t want = kFeedBatch;
        if (max_instructions != 0) {
            Count left = max_instructions - instructions_;
            if (left == 0)
                break;
            want = std::min<Count>(left, kFeedBatch);
        }
        std::size_t got = source.nextBatch(batch, want);
        runBatch(batch, got);
        if (got < want)
            break;
    }
    drain();
    return results(source.name());
}

Count
Simulator::consume(TraceSource &source, Count count)
{
    TraceRecord batch[kFeedBatch];
    Count done = 0;
    while (done < count) {
        std::size_t want =
            static_cast<std::size_t>(std::min<Count>(count - done,
                                                     kFeedBatch));
        std::size_t got = source.nextBatch(batch, want);
        runBatch(batch, got);
        done += got;
        if (got < want)
            break;
    }
    return done;
}

} // namespace wbsim
