/**
 * @file
 * MultiCoreSystem: N per-core Simulators on one clock base, every
 * core's L2 traffic serialised through one BusArbiter.
 *
 * The single-core Simulator is untouched as a component: each core
 * keeps its own L1s, store buffer, retirement engine, and stall
 * accounting. What the system adds is the shared resource and the
 * schedule — a min-clock record interleaving across cores, with the
 * arbiter recursively advancing lagging cores whenever a bus request
 * needs a causally safe grant (DESIGN.md §14).
 *
 * A 1-core system with the bus attached reproduces the legacy
 * single-core run bit for bit (no competing requester means every
 * grant is max(earliest, freeAt), exactly the standalone port); the
 * multicore equivalence tests pin this across all policy axes.
 */

#ifndef WBSIM_SIM_MULTICORE_HH
#define WBSIM_SIM_MULTICORE_HH

#include <memory>
#include <vector>

#include "mem/bus.hh"
#include "sim/machine_config.hh"
#include "sim/results.hh"
#include "sim/simulator.hh"
#include "trace/source.hh"

namespace wbsim
{

/** Everything a multi-core run produces. */
struct MultiCoreResults
{
    /** Per-core results (measured region, core id order). */
    std::vector<SimResults> perCore;

    /** Per-core bus service accounting over the measured region. */
    std::vector<BusCoreStats> bus;

    BusDiscipline discipline = BusDiscipline::Fcfs;

    /**
     * One SimResults summarising the system: counters summed across
     * cores, cycles the max per-core cycle count (the system is done
     * when its slowest core is), mean occupancy averaged. This is
     * what runOne() returns for a multi-core cell, so grids, serve
     * responses, and reports handle topology cells with no schema
     * change.
     */
    SimResults aggregate() const;
};

/** N cores, one arbitrated bus; drive with per-core trace sources. */
class MultiCoreSystem
{
  public:
    /** Homogeneous system: @p config replicated config.cores times. */
    explicit MultiCoreSystem(const MachineConfig &config);

    /** Heterogeneous system: one config per core (the serve path's
     *  mixed-cell scenario). Core count is configs.size(); the bus
     *  discipline comes from configs[0]. */
    explicit MultiCoreSystem(const std::vector<MachineConfig> &configs);

    unsigned
    cores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** @name Introspection for tests. */
    /// @{
    Simulator &core(unsigned i) { return *cores_[i].sim; }
    BusArbiter &bus() { return bus_; }
    /// @}

    /**
     * Attach observability sinks to core @p i. Sinks attach at the
     * core's measurement boundary (after its warmup reset), so they
     * cover the measured region only — per-core metric shards merge
     * afterwards via MetricsRegistry::merge.
     */
    void attachObs(unsigned coreId, const obs::ObsSink &sink);

    /** Attribute bus occupancy to Channel::BusBusy on @p timeline. */
    void
    attachBusTimeline(obs::Timeline *timeline)
    {
        bus_.attachTimeline(timeline);
    }

    /**
     * Run every core's source to exhaustion under one schedule.
     * @p sources must hold one source per core (caller-owned).
     * Each core simulates @p warmup instructions, then resets its
     * statistics at its own boundary (cores cross asynchronously
     * under contention) and measures the rest. Buffers are drained
     * at the end, in core id order.
     *
     * Single-shot: the system's machine state is consumed by the
     * run. Build a fresh system for another run.
     */
    MultiCoreResults run(const std::vector<TraceSource *> &sources,
                         Count warmup = 0);

  private:
    struct CoreState
    {
        std::unique_ptr<Simulator> sim;
        TraceSource *source = nullptr;
        std::vector<TraceRecord> batch;
        std::size_t pos = 0;
        std::size_t have = 0;
        bool exhausted = false;
        bool measuring = false;
        BusCoreStats busAtReset;
        obs::ObsSink sink;
        std::string workload;
    };

    /** Feed one record into core @p i (the arbiter's stepOne hook);
     *  false when its source is exhausted. */
    bool stepOne(unsigned i);

    /** Reset core @p i's statistics and attach its sinks: the
     *  per-core measurement boundary. */
    void beginMeasurement(unsigned i);

    void wireHooks();

    std::vector<CoreState> cores_;
    BusArbiter bus_;
    Count warmup_ = 0;
};

} // namespace wbsim

#endif // WBSIM_SIM_MULTICORE_HH
