#include "sim/results.hh"

#include "util/stats.hh"

namespace wbsim
{

double
SimResults::l1LoadHitRate() const
{
    return stats::ratio(l1LoadHits, l1LoadHits + l1LoadMisses);
}

double
SimResults::wbMergeRate() const
{
    return stats::ratio(wbMerges, stores);
}

double
SimResults::l2ReadHitRate() const
{
    return stats::ratio(l2ReadHits, l2ReadHits + l2ReadMisses);
}

double
SimResults::pctBufferFull() const
{
    return stats::percent(stalls.bufferFullCycles, cycles);
}

double
SimResults::pctL2ReadAccess() const
{
    return stats::percent(stalls.l2ReadAccessCycles, cycles);
}

double
SimResults::pctLoadHazard() const
{
    return stats::percent(stalls.loadHazardCycles, cycles);
}

double
SimResults::pctTotalStalls() const
{
    return stats::percent(stalls.totalCycles(), cycles);
}

double
SimResults::stallEpisodesPer10k() const
{
    return 10000.0 * stats::ratio(stalls.totalEvents(), cycles);
}

void
SimResults::dump(std::ostream &os, const std::string &prefix) const
{
    auto put = [&](const char *name, auto value) {
        os << prefix << name << " " << value << "\n";
    };
    put("workload", workload);
    put("machine", machine);
    put("instructions", instructions);
    put("cycles", cycles);
    put("loads", loads);
    put("stores", stores);
    put("stall.bufferFullCycles", stalls.bufferFullCycles);
    put("stall.bufferFullEvents", stalls.bufferFullEvents);
    put("stall.l2ReadAccessCycles", stalls.l2ReadAccessCycles);
    put("stall.l2ReadAccessEvents", stalls.l2ReadAccessEvents);
    put("stall.loadHazardCycles", stalls.loadHazardCycles);
    put("stall.loadHazardEvents", stalls.loadHazardEvents);
    put("stall.bufferFullMaxEpisode", stalls.bufferFullMaxEpisode);
    put("stall.l2ReadAccessMaxEpisode", stalls.l2ReadAccessMaxEpisode);
    put("stall.loadHazardMaxEpisode", stalls.loadHazardMaxEpisode);
    put("stall.episodesPer10k", stallEpisodesPer10k());
    put("stall.maxEpisode", maxStallEpisode());
    put("l1.loadHits", l1LoadHits);
    put("l1.loadMisses", l1LoadMisses);
    put("l1.storeHits", l1StoreHits);
    put("l1.storeMisses", l1StoreMisses);
    put("l1.loadHitRate", l1LoadHitRate());
    put("wb.merges", wbMerges);
    put("wb.allocations", wbAllocations);
    put("wb.retirements", wbRetirements);
    put("wb.flushes", wbFlushes);
    put("wb.hazards", wbHazards);
    put("wb.servedLoads", wbServedLoads);
    put("wb.wordsWritten", wbWordsWritten);
    put("wb.entriesWritten", wbEntriesWritten);
    put("wb.meanOccupancy", wbMeanOccupancy);
    put("wb.mergeRate", wbMergeRate());
    put("l2.readHits", l2ReadHits);
    put("l2.readMisses", l2ReadMisses);
    put("l2.writeHits", l2WriteHits);
    put("l2.writeMisses", l2WriteMisses);
    put("l2.readHitRate", l2ReadHitRate());
    put("mem.reads", memReads);
    put("mem.writeBacks", memWriteBacks);
    put("ifetch.misses", ifetchMisses);
    put("ifetch.l2StallCycles", l2IFetchStallCycles);
    put("barrier.count", barriers);
    put("barrier.stallCycles", barrierStallCycles);
    put("storeFetch.count", storeFetches);
    put("storeFetch.cycles", storeFetchCycles);
}

} // namespace wbsim
