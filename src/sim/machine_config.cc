#include "sim/machine_config.hh"

#include <bit>
#include <sstream>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace wbsim
{

namespace
{

std::uint64_t
hashGeometry(std::uint64_t h, const CacheGeometry &g)
{
    h = hashCombine(h, g.sizeBytes);
    h = hashCombine(h, g.lineBytes);
    return hashCombine(h, g.associativity);
}

} // namespace

std::uint64_t
MachineConfig::stateFingerprint() const
{
    std::uint64_t h = 0x77b51aceull; // domain tag
    h = hashGeometry(h, l1d);
    h = hashCombine(h, perfectICache ? 1 : 0);
    h = hashGeometry(h, l1i);
    h = hashCombine(h, perfectL2 ? 1 : 0);
    h = hashGeometry(h, l2);
    h = hashCombine(h, l2Latency);
    h = hashCombine(h, memLatency);
    h = hashCombine(h, l2DatapathBytes);
    h = hashCombine(h, issueWidth);
    h = hashCombine(h, std::bit_cast<std::uint64_t>(bubbleProbability));
    h = hashCombine(h, l1WriteAllocate ? 1 : 0);
    const WriteBufferConfig &wb = writeBuffer;
    h = hashCombine(h, static_cast<std::uint64_t>(wb.kind));
    h = hashCombine(h, wb.depth);
    h = hashCombine(h, wb.entryBytes);
    h = hashCombine(h, wb.wordBytes);
    h = hashCombine(h, wb.coalescing ? 1 : 0);
    h = hashCombine(h, static_cast<std::uint64_t>(wb.retirementMode));
    h = hashCombine(h, static_cast<std::uint64_t>(wb.retirementOrder));
    h = hashCombine(h, wb.highWaterMark);
    h = hashCombine(h, wb.fixedRatePeriod);
    h = hashCombine(h, wb.pacedRefillPeriod);
    h = hashCombine(h, wb.pacedBurst);
    h = hashCombine(h, wb.ageTimeout);
    h = hashCombine(h, static_cast<std::uint64_t>(wb.hazardPolicy));
    h = hashCombine(h, wb.writePriorityThreshold);
    h = hashCombine(h, wb.wbHitExtraCycles);
    h = hashCombine(h, wb.naiveScan ? 1 : 0);
    h = hashCombine(h, wb.crossCheck ? 1 : 0);
    // Topology mixes in only for multi-core machines: every
    // single-core fingerprint (embedded in golden artifacts,
    // provenance headers, and serve cache keys) is unchanged, while
    // multi-core cells can never alias a cached single-core cell.
    if (cores != 1) {
        h = hashCombine(h, 0x6d756c7469636f72ull); // topology tag
        h = hashCombine(h, cores);
        h = hashCombine(h, static_cast<std::uint64_t>(busDiscipline));
    }
    return h;
}

Cycle
MachineConfig::l2TransferCycles() const
{
    // The base latency moves the first datapath beat; additional
    // beats add one cycle each.
    std::uint64_t beats = divCeil(l1d.lineBytes, l2DatapathBytes);
    return l2Latency + (beats - 1);
}

void
MachineConfig::validate() const
{
    if (std::string error = validationError(); !error.empty())
        wbsim_fatal(error);
}

std::string
MachineConfig::validationError() const
{
    if (std::string error = l1d.validationError("L1D");
        !error.empty())
        return error;
    if (!perfectICache) {
        if (std::string error = l1i.validationError("L1I");
            !error.empty())
            return error;
    }
    if (!perfectL2) {
        if (std::string error = l2.validationError("L2");
            !error.empty())
            return error;
        if (l2.lineBytes != l1d.lineBytes)
            return "L1 and L2 line sizes must match (strict inclusion "
                   "model)";
        if (l2.sizeBytes < l1d.sizeBytes)
            return "L2 smaller than L1 breaks inclusion";
    }
    if (l2Latency == 0)
        return "L2 latency must be positive";
    if (memLatency == 0)
        return "memory latency must be positive";
    if (l2DatapathBytes == 0 || !isPowerOfTwo(l2DatapathBytes))
        return "L2 datapath width must be a power of two";
    if (issueWidth == 0)
        return "issue width must be positive";
    if (bubbleProbability < 0.0 || bubbleProbability > 1.0)
        return "bubble probability out of range";
    if (std::string error = writeBuffer.validationError();
        !error.empty())
        return error;
    if (writeBuffer.entryBytes > l1d.lineBytes
        && writeBuffer.entryBytes % l1d.lineBytes != 0)
        return "write buffer entries wider than a line must be a "
               "multiple of the line size";
    if (cores == 0)
        return "core count must be positive";
    if (cores > 64)
        return "core count above 64 is not supported";
    return "";
}

std::string
MachineConfig::describe() const
{
    std::ostringstream os;
    os << "L1D=" << l1d.sizeBytes / 1024 << "K";
    if (l1WriteAllocate)
        os << "+wa";
    if (!perfectICache)
        os << "/L1I=" << l1i.sizeBytes / 1024 << "K";
    if (perfectL2)
        os << "/L2=perfect";
    else
        os << "/L2=" << l2.sizeBytes / 1024 << "K,mem=" << memLatency;
    os << ",lat=" << l2Latency;
    if (issueWidth != 1)
        os << "/issue=" << issueWidth;
    os << "/" << writeBuffer.describe();
    if (cores != 1)
        os << "/cores=" << cores << ",bus="
           << busDisciplineName(busDiscipline);
    return os.str();
}

} // namespace wbsim
