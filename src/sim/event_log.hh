/**
 * @file
 * A lightweight ring-buffer event log for debugging simulations.
 *
 * When attached to a Simulator it records one entry per interesting
 * microarchitectural event (loads, stores, stalls, hazards, write
 * transfers). The ring keeps the most recent `capacity` events, so
 * a log can stay attached across a billion-instruction run and still
 * answer "what just happened" when something looks wrong - the same
 * role DPRINTF traces play in gem5, without the I/O cost.
 */

#ifndef WBSIM_SIM_EVENT_LOG_HH
#define WBSIM_SIM_EVENT_LOG_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hh"

namespace wbsim
{

/** What happened. */
enum class SimEventKind : std::uint8_t
{
    LoadHit,        //!< L1 load hit
    LoadMiss,       //!< L1 load miss (addr)
    Store,          //!< store presented to the buffer (addr)
    BufferFullStall, //!< store waited (a = cycles)
    ReadAccessStall, //!< load waited for the port (a = cycles)
    Hazard,         //!< load hazard (addr; a = stall; b = served?)
    WbWrite,        //!< buffer entry written to L2 (addr; a = words)
    Barrier,        //!< barrier drained the buffer (a = stall)
    IFetchMiss,     //!< instruction fetch missed (real I-cache)
};

const char *simEventKindName(SimEventKind kind);

/** One recorded event. */
struct SimEventRecord
{
    Cycle cycle = 0;
    SimEventKind kind = SimEventKind::LoadHit;
    Addr addr = 0;
    Count a = 0;
    Count b = 0;
};

/** Render like "@142 hazard addr=0x1000 a=6 b=0". */
std::string toString(const SimEventRecord &event);

/** Fixed-capacity ring of the most recent events. */
class EventLog
{
  public:
    explicit EventLog(std::size_t capacity = 4096);

    /** Append one event; the oldest is dropped when full. */
    void record(Cycle cycle, SimEventKind kind, Addr addr = 0,
                Count a = 0, Count b = 0);

    /** Number of events currently retained. */
    std::size_t size() const;

    /** Total events ever recorded (including dropped ones). */
    Count recorded() const { return recorded_; }

    /** Events dropped from the front of the ring. */
    Count dropped() const;

    /** The i-th retained event, oldest first. */
    const SimEventRecord &at(std::size_t i) const;

    /** Retained events matching @p kind, oldest first. */
    std::vector<SimEventRecord> ofKind(SimEventKind kind) const;

    /**
     * Visit every retained event, oldest first, without copying the
     * ring (the exporters walk thousands of events; ofKind's
     * per-call vector is for small debug queries only).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < count_; ++i)
            fn(at(i));
    }

    /** Visit every retained event of @p kind, oldest first. */
    template <typename Fn>
    void
    forEach(SimEventKind kind, Fn &&fn) const
    {
        for (std::size_t i = 0; i < count_; ++i) {
            const SimEventRecord &event = at(i);
            if (event.kind == kind)
                fn(event);
        }
    }

    /** Write one formatted line per retained event. */
    void dump(std::ostream &os) const;

    void clear();

  private:
    std::vector<SimEventRecord> ring_;
    std::size_t head_ = 0; //!< next write slot
    std::size_t count_ = 0;
    Count recorded_ = 0;
};

} // namespace wbsim

#endif // WBSIM_SIM_EVENT_LOG_HH
