/**
 * @file
 * SimResults: everything a run produces, in the units the paper
 * reports (stall cycles as a percentage of total execution time,
 * hit rates, traffic counts).
 */

#ifndef WBSIM_SIM_RESULTS_HH
#define WBSIM_SIM_RESULTS_HH

#include <ostream>
#include <string>

#include "core/stall_stats.hh"
#include "util/types.hh"

namespace wbsim
{

/** Aggregated outcome of one simulation run. */
struct SimResults
{
    std::string workload;
    std::string machine;

    Count instructions = 0;
    Count cycles = 0;
    Count loads = 0;
    Count stores = 0;

    /** The paper's three stall categories (Table 3). */
    StallStats stalls;

    /** @name L1 data cache. */
    /// @{
    Count l1LoadHits = 0;
    Count l1LoadMisses = 0;
    Count l1StoreHits = 0;
    Count l1StoreMisses = 0;
    /// @}

    /** @name Write buffer. */
    /// @{
    Count wbMerges = 0;
    Count wbAllocations = 0;
    Count wbRetirements = 0;
    Count wbFlushes = 0;
    Count wbHazards = 0;
    Count wbServedLoads = 0;
    Count wbWordsWritten = 0;
    Count wbEntriesWritten = 0;
    double wbMeanOccupancy = 0.0;
    /// @}

    /** @name L2 and memory. */
    /// @{
    Count l2ReadHits = 0;
    Count l2ReadMisses = 0;
    Count l2WriteHits = 0;
    Count l2WriteMisses = 0;
    Count memReads = 0;
    Count memWriteBacks = 0;
    /// @}

    /** @name Real-I-cache extension (§4.3). */
    /// @{
    Count ifetchMisses = 0;
    Count l2IFetchStallCycles = 0;
    /// @}

    /** @name Memory-barrier extension (§2.2 ordering instructions). */
    /// @{
    Count barriers = 0;
    Count barrierStallCycles = 0;
    /// @}

    /** @name Write-allocate L1 extension (ablation A14). */
    /// @{
    Count storeFetches = 0;
    Count storeFetchCycles = 0;
    /// @}

    /** L1 load hit rate (Table 5). */
    double l1LoadHitRate() const;
    /** Write buffer merge ("hit") rate over stores (Table 5). */
    double wbMergeRate() const;
    /** L2 hit rate over demand reads (Table 7). */
    double l2ReadHitRate() const;

    /** @name Stall cycles as % of total time (the figures' y-axis). */
    /// @{
    double pctBufferFull() const;
    double pctL2ReadAccess() const;
    double pctLoadHazard() const;
    double pctTotalStalls() const;
    /// @}

    /** @name Burstiness (tail) measures. Two runs with equal mean
     *  CPI can stall in very different rhythms; these summarize how
     *  clustered the stalls were. */
    /// @{
    /** Stall episodes (all three categories) per 10k cycles. */
    double stallEpisodesPer10k() const;
    /** Longest single stall episode in any category, in cycles. */
    Count maxStallEpisode() const { return stalls.maxEpisode(); }
    /// @}

    /** Dump every statistic as "prefix.name value" lines (the
     *  machine-readable companion to the report tables). */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Exact field-by-field equality, doubles included: a run
     *  resumed from a warm-state checkpoint must reproduce the
     *  from-scratch run bit for bit, not approximately. */
    bool operator==(const SimResults &other) const = default;
};

} // namespace wbsim

#endif // WBSIM_SIM_RESULTS_HH
