#include "util/thread_pool.hh"

#include <algorithm>
#include <exception>
#include <mutex>

#include "util/logging.hh"
#include "util/options.hh"

namespace wbsim
{

void
parallelFor(std::size_t count, unsigned threads,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (threads <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    threads = std::min<std::size_t>(threads, count);
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&]() {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= count)
                    return;
                try {
                    body(i);
                } catch (...) {
                    {
                        std::lock_guard<std::mutex> lock(error_mutex);
                        if (!error)
                            error = std::current_exception();
                    }
                    // Stop handing out iterations; peers drain out.
                    next.store(count);
                    return;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    if (error)
        std::rethrow_exception(error);
}

WorkerPool::~WorkerPool()
{
    join();
}

void
WorkerPool::start(unsigned threads, std::function<void(unsigned)> body)
{
    wbsim_assert(workers_.empty(), "WorkerPool started twice");
    wbsim_assert(body, "WorkerPool needs a body");
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers_.emplace_back([body, t]() {
            try {
                body(t);
            } catch (const std::exception &e) {
                wbsim_fatal("worker ", t,
                            " died on an unhandled exception: ",
                            e.what());
            } catch (...) {
                wbsim_fatal("worker ", t,
                            " died on an unhandled exception");
            }
        });
    }
}

void
WorkerPool::join()
{
    for (auto &worker : workers_)
        if (worker.joinable())
            worker.join();
    workers_.clear();
}

unsigned
defaultThreads()
{
    auto env = envUint("WBSIM_THREADS", 0);
    if (env > 0)
        return static_cast<unsigned>(std::min<std::uint64_t>(env, 64));
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    return std::min(hw, 64u);
}

} // namespace wbsim
