#include "util/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/logging.hh"

namespace wbsim
{

namespace
{

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    bool digit_seen = false;
    for (char c : cell) {
        if (std::isdigit(static_cast<unsigned char>(c)))
            digit_seen = true;
        else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e')
            return false;
    }
    return digit_seen;
}

} // namespace

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    wbsim_assert(header_.empty() || row.size() == header_.size(),
                 "table row width mismatch");
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

std::size_t
TextTable::rows() const
{
    std::size_t n = 0;
    for (const auto &row : rows_)
        if (!(row.size() == 1 && row[0] == kSeparatorTag))
            ++n;
    return n;
}

void
TextTable::render(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            return;
        widths.resize(std::max(widths.size(), row.size()), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto rule = [&]() {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            os << "+" << std::string(widths[i] + 2, '-');
        }
        os << "+\n";
    };
    auto emit = [&](const std::vector<std::string> &row, bool is_header) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            bool right = !is_header && looksNumeric(cell);
            os << "| ";
            if (right)
                os << std::string(widths[i] - cell.size(), ' ') << cell;
            else
                os << cell << std::string(widths[i] - cell.size(), ' ');
            os << " ";
        }
        os << "|\n";
    };

    rule();
    if (!header_.empty()) {
        emit(header_, true);
        rule();
    }
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            rule();
        else
            emit(row, false);
    }
    rule();
}

void
TextTable::renderCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_) {
        if (!(row.size() == 1 && row[0] == kSeparatorTag))
            emit(row);
    }
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double value, int decimals)
{
    return formatDouble(value, decimals);
}

} // namespace wbsim
