#include "util/simd.hh"

#include <cstdlib>
#include <cstring>

namespace wbsim::simd
{

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::Sse2:
        return "sse2";
    case Level::Avx2:
        return "avx2";
    case Level::Neon:
        return "neon";
    }
    return "unknown";
}

Level
detectLevel()
{
#if defined(WBSIM_SIMD_X86)
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
    return Level::Sse2;
#elif defined(WBSIM_SIMD_NEON)
    return Level::Neon;
#else
    return Level::Scalar;
#endif
}

namespace
{

Level
readDefaultLevel()
{
    // getenv is only MT-unsafe against a concurrent setenv; nothing
    // in the program writes the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv("WBSIM_SIMD");
    if (env != nullptr
        && (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0
            || std::strcmp(env, "scalar") == 0))
        return Level::Scalar;
    return detectLevel();
}

} // namespace

Level
defaultLevel()
{
    static const Level cached = readDefaultLevel();
    return cached;
}

} // namespace wbsim::simd
