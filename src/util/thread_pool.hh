/**
 * @file
 * A small fixed-size thread pool for running experiment grids.
 *
 * The harness runs hundreds of independent simulations per figure;
 * parallelFor() distributes them across hardware threads while
 * keeping results ordered and deterministic (each simulation owns
 * its state; no sharing).
 *
 * Thread-safety contract: iterations are claimed from one atomic
 * counter, each result slot is written by exactly one worker, and
 * the join at the end of parallelFor() publishes every write to the
 * caller. CI's `tsan` job runs this pool (and its users) under
 * ThreadSanitizer with no suppressions — keep it that way.
 */

#ifndef WBSIM_UTIL_THREAD_POOL_HH
#define WBSIM_UTIL_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace wbsim
{

/**
 * Run @p body(i) for every i in [0, count) across @p threads
 * workers. Blocks until all iterations finish. With threads <= 1 the
 * loop runs inline (useful for debugging).
 *
 * If @p body throws, the first exception (in completion order) is
 * captured, remaining iterations are abandoned as workers notice,
 * and the exception is rethrown on the calling thread after all
 * workers have joined. Later exceptions are discarded.
 */
void parallelFor(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)> &body);

/** Hardware concurrency clamped to [1, 64], honours WBSIM_THREADS. */
unsigned defaultThreads();

/**
 * A set of long-lived worker threads for services (wbsim-serve).
 * Unlike parallelFor's scoped fork/join, the workers here run one
 * long @p body(workerIndex) each — typically a pop-until-closed loop
 * over a queue — and live until join().
 *
 * Thread-safety contract: start() publishes @p body to the workers
 * via thread creation; join() publishes everything the workers wrote
 * back to the caller. The pool itself is not re-entrant: call
 * start() once, then join() once (the destructor joins as a
 * backstop). A body that lets an exception escape takes the process
 * down with a clear message instead of std::terminate's silence —
 * service loops are expected to catch and report their own errors.
 */
class WorkerPool
{
  public:
    WorkerPool() = default;
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Launch @p threads workers (at least 1) running @p body. */
    void start(unsigned threads,
               std::function<void(unsigned)> body);

    /** Wait for every worker's body to return. Idempotent. */
    void join();

    /** Workers launched by start() (0 before start). */
    std::size_t size() const { return workers_.size(); }

  private:
    std::vector<std::thread> workers_;
};

} // namespace wbsim

#endif // WBSIM_UTIL_THREAD_POOL_HH
