/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef WBSIM_UTIL_TYPES_HH
#define WBSIM_UTIL_TYPES_HH

#include <cstdint>

namespace wbsim
{

/** Simulated time, in CPU cycles. */
using Cycle = std::uint64_t;

/** A byte address in the simulated machine. */
using Addr = std::uint64_t;

/** A count of simulated events (instructions, accesses, stalls...). */
using Count = std::uint64_t;

/** Sentinel for "no cycle" / "never". */
constexpr Cycle kNoCycle = ~Cycle{0};

} // namespace wbsim

#endif // WBSIM_UTIL_TYPES_HH
