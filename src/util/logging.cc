#include "util/logging.hh"

#include <mutex>

namespace wbsim
{

namespace
{

LogLevel global_level = LogLevel::Normal;
std::mutex log_mutex;

} // namespace

LogLevel
logLevel()
{
    return global_level;
}

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

namespace detail
{

void
report(const char *kind, const std::string &message)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::cerr << kind << ": " << message << "\n";
}

void
terminate(const char *kind, const char *file, int line,
          const std::string &message, int exit_code)
{
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << kind << ": " << message << "\n"
                  << "  at " << file << ":" << line << "\n";
    }
    if (exit_code < 0)
        std::abort();
    std::exit(exit_code);
}

} // namespace detail

} // namespace wbsim
