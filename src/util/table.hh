/**
 * @file
 * Plain-text table rendering for the reproduction reports.
 */

#ifndef WBSIM_UTIL_TABLE_HH
#define WBSIM_UTIL_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace wbsim
{

/**
 * A simple text table: a header row plus data rows, rendered with
 * aligned columns. Numeric-looking cells are right-aligned, others
 * left-aligned.
 */
class TextTable
{
  public:
    /** Set the header row (also fixes the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Number of data rows (separators excluded). */
    std::size_t rows() const;

    /** Render with box-drawing-free ASCII framing. */
    void render(std::ostream &os) const;

    /** Render as comma-separated values (header + rows). */
    void renderCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    // A row with a single empty sentinel cell encodes a separator.
    std::vector<std::vector<std::string>> rows_;
    static constexpr const char *kSeparatorTag = "\x01sep";
};

/** Format @p value with @p decimals digits after the point. */
std::string formatDouble(double value, int decimals);

/** Format a percentage like "12.34". */
std::string formatPercent(double value, int decimals = 2);

} // namespace wbsim

#endif // WBSIM_UTIL_TABLE_HH
