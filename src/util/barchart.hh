/**
 * @file
 * Text rendering of the paper's stacked stall-cycle bar charts.
 *
 * Each figure in the paper is a per-benchmark group of stacked bars
 * (L2-read-access / buffer-full / load-hazard segments). We render
 * the same data as horizontal bars so figures can be eyeballed in a
 * terminal and diffed in CI.
 */

#ifndef WBSIM_UTIL_BARCHART_HH
#define WBSIM_UTIL_BARCHART_HH

#include <ostream>
#include <string>
#include <vector>

namespace wbsim
{

/** One stacked horizontal bar: a label plus ordered segments. */
struct StackedBar
{
    std::string label;
    /** Segment values, in stacking order; units are arbitrary. */
    std::vector<double> segments;
};

/**
 * Renderer for groups of stacked horizontal bars.
 *
 * Segments are drawn with one glyph per segment kind, scaled so the
 * largest bar spans @p width characters. A legend line maps glyphs
 * to segment names.
 */
class BarChart
{
  public:
    /** @param segment_names names for legend, stacking order.
     *  @param width maximum bar width in characters. */
    explicit BarChart(std::vector<std::string> segment_names,
                      unsigned width = 60);

    /** Start a new labelled group (e.g. one benchmark). */
    void beginGroup(const std::string &name);

    /** Add one bar to the current group. */
    void addBar(StackedBar bar);

    /** Render all groups, legend first. */
    void render(std::ostream &os) const;

    /** Override the value that maps to full width (default: max). */
    void setScaleMax(double scale_max) { scale_max_ = scale_max; }

  private:
    struct Group
    {
        std::string name;
        std::vector<StackedBar> bars;
    };

    std::vector<std::string> segment_names_;
    unsigned width_;
    double scale_max_ = 0.0;
    std::vector<Group> groups_;

    static const char *glyphFor(std::size_t segment);
};

} // namespace wbsim

#endif // WBSIM_UTIL_BARCHART_HH
