/**
 * @file
 * Branch-free sweep kernels over the EntryStore's structure-of-arrays
 * lanes (DESIGN.md §12). Every kernel reads parallel arrays — entry
 * base tags, word-valid masks, sequence stamps — plus a packed
 * occupancy bitmask, and answers one store-buffer query in a single
 * pass with no data-dependent branches in the lane loop:
 *
 *  - probeSweep        the load-hazard probe: block overlap, newest
 *                      overlapping seq, and the coalesced word mask
 *                      at the probe's entry base, all in one sweep
 *  - newestMatch       the coalescing merge-target lookup (newest
 *                      valid entry with a given base, one slot
 *                      excludable for an entry mid-retirement)
 *  - oldestValid       FIFO scan fallback (minimum seq)
 *  - oldestOverlapping flush-item-only's victim scan
 *  - countValid        occupancy popcount
 *
 * Each kernel has a portable scalar form (auto-vectorizable; always
 * compiled, always the fallback) and explicit SSE2/AVX2/NEON
 * specializations selected by a `Level` value the caller caches. The
 * vector paths compile out entirely under `-DWBSIM_SIMD=OFF`
 * (WBSIM_SIMD_DISABLED); at runtime the `WBSIM_SIMD` environment
 * variable (on/off/1/0) gates `defaultLevel()`, and the crossCheck
 * twin-rig runs the scalar and vector paths against each other.
 *
 * Lane arrays are padded to a multiple of kLanePad slots with their
 * occupancy bits clear, so the vector loops never need a tail pass;
 * invalid lanes are neutralized by mask selection, never skipped by
 * a branch. Results are bit-identical across every level by
 * construction: seq stamps are unique, so min/max reductions have a
 * single well-defined winner.
 */

#ifndef WBSIM_UTIL_SIMD_HH
#define WBSIM_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "util/lint.hh"
#include "util/types.hh"

#if !defined(WBSIM_SIMD_DISABLED)
#if defined(__x86_64__) || defined(__i386__)
#define WBSIM_SIMD_X86 1
#include <immintrin.h>
/** AVX2 bodies are compiled per-function (no global -mavx2), so the
 *  scalar build stays portable; dispatch checks cpuid at startup. */
#define WBSIM_TARGET_AVX2 __attribute__((target("avx2")))
#elif defined(__aarch64__)
#define WBSIM_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif // !WBSIM_SIMD_DISABLED

namespace wbsim::simd
{

/** Kernel implementation a store selects at construction. */
enum class Level : std::uint8_t
{
    Scalar, //!< portable branch-free sweep (always available)
    Sse2,   //!< x86-64 baseline: vector equality filters
    Avx2,   //!< 4x64-bit lanes per step (runtime cpuid-gated)
    Neon,   //!< aarch64 2x64-bit lanes
};

const char *levelName(Level level);

/** Best vector level this build + CPU supports (Scalar when the
 *  vector paths are compiled out). */
Level detectLevel();

/** detectLevel() gated by the WBSIM_SIMD environment variable
 *  (off/0/scalar force Scalar; anything else, or unset, keeps the
 *  detected level). Read once and cached. */
Level defaultLevel();

/** Lane arrays must be sized to a multiple of this (the widest
 *  vector step), so kernels never need a scalar tail. */
constexpr std::size_t kLanePad = 4;

/** A read-only view of the store's parallel lane arrays. */
struct Lanes
{
    const Addr *base;          //!< entry base tags
    const std::uint32_t *mask; //!< word-valid masks
    const std::uint64_t *seq;  //!< allocation stamps (unique, >= 1)
    const std::uint64_t *occ;  //!< packed occupancy bitmask
    std::size_t n;             //!< padded lane count (kLanePad multiple)
};

/** probeSweep's answer (the caller derives wordHit from foundMask). */
struct ProbeHit
{
    bool blockHit = false;
    std::uint64_t hitSeq = 0;       //!< newest overlapping seq (0 = none)
    std::uint32_t foundMask = 0;    //!< OR of masks at the probe base
};

namespace detail
{

/** Occupancy bit for lane @p i. */
inline std::uint64_t
laneBit(const std::uint64_t *occ, std::size_t i)
{
    return (occ[i >> 6] >> (i & 63)) & 1u;
}

// -------------------------------------------------------------------
// Portable scalar kernels: one pass, conditional-select per lane.
// The (0 - flag) idiom turns a 0/1 predicate into a 0/all-ones mask;
// every lane executes the same instructions so the loop both
// auto-vectorizes and serves as the reference the vector paths are
// cross-checked against.
// -------------------------------------------------------------------

WBSIM_HOT inline ProbeHit
probeScalar(const Lanes &l, Addr line_base, Addr line_end,
            Addr entry_base, Addr entry_bytes)
{
    std::uint64_t block = 0;
    std::uint64_t hit_seq = 0;
    std::uint32_t found = 0;
    for (std::size_t i = 0; i < l.n; ++i) {
        const std::uint64_t lane = laneBit(l.occ, i);
        const Addr b = l.base[i];
        const std::uint64_t overlap = lane
            & static_cast<std::uint64_t>(b < line_end)
            & static_cast<std::uint64_t>(b + entry_bytes > line_base);
        block |= overlap;
        const std::uint64_t s = l.seq[i] & (0 - overlap);
        hit_seq = s > hit_seq ? s : hit_seq;
        const std::uint64_t eq =
            lane & static_cast<std::uint64_t>(b == entry_base);
        found |= l.mask[i]
            & static_cast<std::uint32_t>(0 - static_cast<std::uint32_t>(eq));
    }
    return {block != 0, hit_seq, found};
}

WBSIM_HOT inline int
newestMatchScalar(const Lanes &l, Addr base, int exclude)
{
    std::uint64_t best_key = 0;
    int best = -1;
    for (std::size_t i = 0; i < l.n; ++i) {
        const std::uint64_t match = laneBit(l.occ, i)
            & static_cast<std::uint64_t>(l.base[i] == base)
            & static_cast<std::uint64_t>(static_cast<int>(i) != exclude);
        const std::uint64_t key = l.seq[i] & (0 - match);
        best = key > best_key ? static_cast<int>(i) : best;
        best_key = key > best_key ? key : best_key;
    }
    return best;
}

WBSIM_HOT inline int
oldestValidScalar(const Lanes &l)
{
    std::uint64_t best_key = ~std::uint64_t{0};
    int best = -1;
    for (std::size_t i = 0; i < l.n; ++i) {
        const std::uint64_t lane = laneBit(l.occ, i);
        // Invalid lanes present the maximum key, which never wins
        // against a real seq (seqs are small counters).
        const std::uint64_t key = l.seq[i] | (lane - 1);
        best = key < best_key ? static_cast<int>(i) : best;
        best_key = key < best_key ? key : best_key;
    }
    return best;
}

WBSIM_HOT inline int
oldestOverlappingScalar(const Lanes &l, Addr line_base, Addr line_end,
                        Addr entry_bytes)
{
    std::uint64_t best_key = ~std::uint64_t{0};
    int best = -1;
    for (std::size_t i = 0; i < l.n; ++i) {
        const Addr b = l.base[i];
        const std::uint64_t overlap = laneBit(l.occ, i)
            & static_cast<std::uint64_t>(b < line_end)
            & static_cast<std::uint64_t>(b + entry_bytes > line_base);
        const std::uint64_t key = l.seq[i] | (overlap - 1);
        best = key < best_key ? static_cast<int>(i) : best;
        best_key = key < best_key ? key : best_key;
    }
    return best;
}

WBSIM_HOT inline unsigned
countValidScalar(const Lanes &l)
{
    unsigned count = 0;
    for (std::size_t w = 0; w < (l.n + 63) / 64; ++w)
        count += static_cast<unsigned>(__builtin_popcountll(l.occ[w]));
    return count;
}

#if defined(WBSIM_SIMD_X86)

// -------------------------------------------------------------------
// SSE2 (x86-64 baseline, no cpuid gate): vectorized 64-bit equality
// filter for the merge-target lookup; the rare matching lanes reduce
// scalar. SSE2 has no 64-bit compares, so equality is two 32-bit
// compares ANDed across the halves.
// -------------------------------------------------------------------

WBSIM_HOT inline int
newestMatchSse2(const Lanes &l, Addr base, int exclude)
{
    const __m128i target = _mm_set1_epi64x(static_cast<long long>(base));
    std::uint64_t best_key = 0;
    int best = -1;
    for (std::size_t i = 0; i < l.n; i += 2) {
        const std::uint64_t bits = (l.occ[i >> 6] >> (i & 63)) & 0x3;
        if (bits == 0)
            continue;
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(l.base + i));
        const __m128i eq32 = _mm_cmpeq_epi32(vb, target);
        const __m128i eq64 = _mm_and_si128(
            eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
        unsigned hits = static_cast<unsigned>(
                            _mm_movemask_pd(_mm_castsi128_pd(eq64)))
            & static_cast<unsigned>(bits);
        while (hits != 0) {
            const unsigned k = static_cast<unsigned>(
                __builtin_ctz(hits));
            hits &= hits - 1;
            const std::size_t j = i + k;
            const std::uint64_t key = l.seq[j];
            if (static_cast<int>(j) != exclude && key > best_key) {
                best_key = key;
                best = static_cast<int>(j);
            }
        }
    }
    return best;
}

// -------------------------------------------------------------------
// AVX2: 4x64-bit lanes per step. Unsigned 64-bit ordering uses the
// sign-bias trick (x ^ 2^63 turns unsigned < into signed <); seq
// stamps are counters far below 2^63, so their max reduction uses
// the signed compare directly.
// -------------------------------------------------------------------

WBSIM_TARGET_AVX2 inline ProbeHit
probeAvx2(const Lanes &l, Addr line_base, Addr line_end,
          Addr entry_base, Addr entry_bytes)
{
    const __m256i sign = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    const __m256i end_b = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(line_end)), sign);
    const __m256i lbase_b = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(line_base)), sign);
    const __m256i target =
        _mm256_set1_epi64x(static_cast<long long>(entry_base));
    const __m256i ebytes =
        _mm256_set1_epi64x(static_cast<long long>(entry_bytes));
    const __m256i lane_sel = _mm256_set_epi64x(8, 4, 2, 1);
    __m256i seq_acc = _mm256_setzero_si256();
    int block_bits = 0;
    std::uint32_t found = 0;
    for (std::size_t i = 0; i < l.n; i += 4) {
        const std::uint64_t bits = (l.occ[i >> 6] >> (i & 63)) & 0xF;
        const __m256i valid = _mm256_cmpeq_epi64(
            _mm256_and_si256(
                _mm256_set1_epi64x(static_cast<long long>(bits)),
                lane_sel),
            lane_sel);
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(l.base + i));
        const __m256i vb_b = _mm256_xor_si256(vb, sign);
        const __m256i lt = _mm256_cmpgt_epi64(end_b, vb_b);
        const __m256i vend_b = _mm256_xor_si256(
            _mm256_add_epi64(vb, ebytes), sign);
        const __m256i gt = _mm256_cmpgt_epi64(vend_b, lbase_b);
        const __m256i overlap =
            _mm256_and_si256(valid, _mm256_and_si256(lt, gt));
        block_bits |= _mm256_movemask_pd(_mm256_castsi256_pd(overlap));
        const __m256i vs = _mm256_and_si256(
            overlap, _mm256_loadu_si256(
                         reinterpret_cast<const __m256i *>(l.seq + i)));
        seq_acc = _mm256_blendv_epi8(seq_acc, vs,
                                     _mm256_cmpgt_epi64(vs, seq_acc));
        const __m256i eq =
            _mm256_and_si256(valid, _mm256_cmpeq_epi64(vb, target));
        int eq_bits = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        while (eq_bits != 0) {
            const unsigned k = static_cast<unsigned>(
                __builtin_ctz(static_cast<unsigned>(eq_bits)));
            eq_bits &= eq_bits - 1;
            found |= l.mask[i + k];
        }
    }
    alignas(32) std::uint64_t s[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(s), seq_acc);
    std::uint64_t hit_seq = s[0] > s[1] ? s[0] : s[1];
    const std::uint64_t hi = s[2] > s[3] ? s[2] : s[3];
    hit_seq = hit_seq > hi ? hit_seq : hi;
    return {block_bits != 0, hit_seq, found};
}

WBSIM_TARGET_AVX2 inline int
newestMatchAvx2(const Lanes &l, Addr base, int exclude)
{
    const __m256i target =
        _mm256_set1_epi64x(static_cast<long long>(base));
    const __m256i lane_sel = _mm256_set_epi64x(8, 4, 2, 1);
    std::uint64_t best_key = 0;
    int best = -1;
    for (std::size_t i = 0; i < l.n; i += 4) {
        const std::uint64_t bits = (l.occ[i >> 6] >> (i & 63)) & 0xF;
        if (bits == 0)
            continue;
        const __m256i valid = _mm256_cmpeq_epi64(
            _mm256_and_si256(
                _mm256_set1_epi64x(static_cast<long long>(bits)),
                lane_sel),
            lane_sel);
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(l.base + i));
        const __m256i eq =
            _mm256_and_si256(valid, _mm256_cmpeq_epi64(vb, target));
        int eq_bits = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        while (eq_bits != 0) {
            const unsigned k = static_cast<unsigned>(
                __builtin_ctz(static_cast<unsigned>(eq_bits)));
            eq_bits &= eq_bits - 1;
            const std::size_t j = i + k;
            const std::uint64_t key = l.seq[j];
            if (static_cast<int>(j) != exclude && key > best_key) {
                best_key = key;
                best = static_cast<int>(j);
            }
        }
    }
    return best;
}

#elif defined(WBSIM_SIMD_NEON)

// -------------------------------------------------------------------
// NEON (aarch64): 2x64-bit lanes with native unsigned 64-bit
// compares; no cpuid gate (Advanced SIMD is architectural).
// -------------------------------------------------------------------

WBSIM_HOT inline ProbeHit
probeNeon(const Lanes &l, Addr line_base, Addr line_end,
          Addr entry_base, Addr entry_bytes)
{
    const uint64x2_t vend = vdupq_n_u64(line_end);
    const uint64x2_t vlbase = vdupq_n_u64(line_base);
    const uint64x2_t vtarget = vdupq_n_u64(entry_base);
    const uint64x2_t vebytes = vdupq_n_u64(entry_bytes);
    uint64x2_t seq_acc = vdupq_n_u64(0);
    uint64x2_t block_acc = vdupq_n_u64(0);
    std::uint32_t found = 0;
    for (std::size_t i = 0; i < l.n; i += 2) {
        const std::uint64_t bits = (l.occ[i >> 6] >> (i & 63)) & 0x3;
        const uint64x2_t valid = vcombine_u64(
            vdup_n_u64(0 - (bits & 1)), vdup_n_u64(0 - (bits >> 1)));
        const uint64x2_t vb = vld1q_u64(l.base + i);
        const uint64x2_t overlap = vandq_u64(
            valid, vandq_u64(vcltq_u64(vb, vend),
                             vcgtq_u64(vaddq_u64(vb, vebytes), vlbase)));
        block_acc = vorrq_u64(block_acc, overlap);
        const uint64x2_t vs = vandq_u64(overlap, vld1q_u64(l.seq + i));
        seq_acc = vbslq_u64(vcgtq_u64(vs, seq_acc), vs, seq_acc);
        const uint64x2_t eq = vandq_u64(valid, vceqq_u64(vb, vtarget));
        if (vgetq_lane_u64(eq, 0) != 0)
            found |= l.mask[i];
        if (vgetq_lane_u64(eq, 1) != 0)
            found |= l.mask[i + 1];
    }
    const std::uint64_t s0 = vgetq_lane_u64(seq_acc, 0);
    const std::uint64_t s1 = vgetq_lane_u64(seq_acc, 1);
    const bool block = (vgetq_lane_u64(block_acc, 0)
                        | vgetq_lane_u64(block_acc, 1))
        != 0;
    return {block, s0 > s1 ? s0 : s1, found};
}

WBSIM_HOT inline int
newestMatchNeon(const Lanes &l, Addr base, int exclude)
{
    const uint64x2_t vtarget = vdupq_n_u64(base);
    std::uint64_t best_key = 0;
    int best = -1;
    for (std::size_t i = 0; i < l.n; i += 2) {
        const std::uint64_t bits = (l.occ[i >> 6] >> (i & 63)) & 0x3;
        if (bits == 0)
            continue;
        const uint64x2_t vb = vld1q_u64(l.base + i);
        const uint64x2_t eq = vceqq_u64(vb, vtarget);
        const std::uint64_t hit0 = vgetq_lane_u64(eq, 0) & (bits & 1);
        const std::uint64_t hit1 = vgetq_lane_u64(eq, 1) & (bits >> 1);
        if (hit0 != 0 && static_cast<int>(i) != exclude
            && l.seq[i] > best_key) {
            best_key = l.seq[i];
            best = static_cast<int>(i);
        }
        if (hit1 != 0 && static_cast<int>(i + 1) != exclude
            && l.seq[i + 1] > best_key) {
            best_key = l.seq[i + 1];
            best = static_cast<int>(i + 1);
        }
    }
    return best;
}

#endif // WBSIM_SIMD_NEON

} // namespace detail

// -------------------------------------------------------------------
// Dispatch wrappers: the store caches a Level and passes it in; the
// switch is perfectly predicted and the scalar fallback covers any
// level a kernel has no specialization for.
// -------------------------------------------------------------------

WBSIM_HOT inline ProbeHit
probeSweep(const Lanes &l, Addr line_base, Addr line_end,
           Addr entry_base, Addr entry_bytes, Level level)
{
#if defined(WBSIM_SIMD_X86)
    if (level == Level::Avx2)
        return detail::probeAvx2(l, line_base, line_end, entry_base,
                                 entry_bytes);
#elif defined(WBSIM_SIMD_NEON)
    if (level == Level::Neon)
        return detail::probeNeon(l, line_base, line_end, entry_base,
                                 entry_bytes);
#endif
    static_cast<void>(level);
    return detail::probeScalar(l, line_base, line_end, entry_base,
                               entry_bytes);
}

WBSIM_HOT inline int
newestMatch(const Lanes &l, Addr base, int exclude, Level level)
{
#if defined(WBSIM_SIMD_X86)
    if (level == Level::Avx2)
        return detail::newestMatchAvx2(l, base, exclude);
    if (level == Level::Sse2)
        return detail::newestMatchSse2(l, base, exclude);
#elif defined(WBSIM_SIMD_NEON)
    if (level == Level::Neon)
        return detail::newestMatchNeon(l, base, exclude);
#endif
    static_cast<void>(level);
    return detail::newestMatchScalar(l, base, exclude);
}

WBSIM_HOT inline int
oldestValid(const Lanes &l, Level level)
{
    static_cast<void>(level);
    return detail::oldestValidScalar(l);
}

WBSIM_HOT inline int
oldestOverlapping(const Lanes &l, Addr line_base, Addr line_end,
                  Addr entry_bytes, Level level)
{
    static_cast<void>(level);
    return detail::oldestOverlappingScalar(l, line_base, line_end,
                                           entry_bytes);
}

WBSIM_HOT inline unsigned
countValid(const Lanes &l, Level level)
{
    static_cast<void>(level);
    return detail::countValidScalar(l);
}

} // namespace wbsim::simd

#endif // WBSIM_UTIL_SIMD_HH
