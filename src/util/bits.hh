/**
 * @file
 * Bit-manipulation helpers used by the cache and write-buffer models.
 */

#ifndef WBSIM_UTIL_BITS_HH
#define WBSIM_UTIL_BITS_HH

#include <bit>
#include <cstdint>

#include "util/logging.hh"
#include "util/types.hh"

namespace wbsim
{

/** True iff @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); @p value must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** log2 of a power of two. Panics otherwise. */
inline unsigned
exactLog2(std::uint64_t value)
{
    wbsim_assert(isPowerOfTwo(value), "exactLog2 of non-power-of-two");
    return floorLog2(value);
}

/** Round @p addr down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Round @p addr up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** True iff @p addr is a multiple of power-of-two @p align. */
constexpr bool
isAligned(Addr addr, std::uint64_t align)
{
    return (addr & (align - 1)) == 0;
}

/** Extract bits [first, first+count) of @p value. */
constexpr std::uint64_t
bitsOf(std::uint64_t value, unsigned first, unsigned count)
{
    return (value >> first) & ((count >= 64) ? ~std::uint64_t{0}
                                             : ((std::uint64_t{1} << count)
                                                - 1));
}

/**
 * Population count that always inlines. std::popcount lowers to a
 * libgcc call (__popcountdi2) under the portable baseline ISA, which
 * is too slow for the write buffer's per-store valid-mask updates;
 * this SWAR version compiles to a dozen cheap ALU ops everywhere.
 */
constexpr unsigned
popcount32(std::uint32_t v)
{
    v = v - ((v >> 1) & 0x55555555u);
    v = (v & 0x33333333u) + ((v >> 2) & 0x33333333u);
    v = (v + (v >> 4)) & 0x0F0F0F0Fu;
    return (v * 0x01010101u) >> 24;
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace wbsim

#endif // WBSIM_UTIL_BITS_HH
