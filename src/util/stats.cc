#include "util/stats.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace wbsim::stats
{

double
ratio(Count numerator, Count denominator)
{
    if (denominator == 0)
        return 0.0;
    return static_cast<double>(numerator)
        / static_cast<double>(denominator);
}

double
percent(Count numerator, Count denominator)
{
    return 100.0 * ratio(numerator, denominator);
}

Histogram::Histogram(std::size_t buckets, std::uint64_t bucket_width)
    : counts_(buckets + 1, 0), width_(bucket_width)
{
    wbsim_assert(buckets > 0, "histogram needs at least one bucket");
    wbsim_assert(bucket_width > 0, "histogram bucket width must be > 0");
}

void
Histogram::sample(std::uint64_t value, Count count)
{
    if (count == 0)
        return;
    std::uint64_t scaled = width_ == 1 ? value : value / width_;
    std::size_t idx =
        std::min<std::uint64_t>(scaled, counts_.size() - 1);
    counts_[idx] += count;
    samples_ += count;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value) * static_cast<double>(count);
}

double
Histogram::quantile(double q) const
{
    return quantileWithOverflow(q).value;
}

Quantile
Histogram::quantileWithOverflow(double q) const
{
    if (samples_ == 0)
        return {0.0, false};
    q = std::min(1.0, std::max(0.0, q));
    // The sample with (0-based) rank floor(q * (n - 1)).
    Count target = static_cast<Count>(
        q * static_cast<double>(samples_ - 1));
    Count before = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        Count c = counts_[i];
        if (c == 0 || before + c <= target) {
            before += c;
            continue;
        }
        if (i == counts_.size() - 1) {
            // Overflow bucket: the in-bucket distribution is lost, so
            // clamp to the observed maximum and say so.
            return {static_cast<double>(max_), true};
        }
        // Interpolate linearly inside [i, i+1) * width.
        double frac = (static_cast<double>(target - before) + 0.5)
            / static_cast<double>(c);
        double value = (static_cast<double>(i) + frac)
            * static_cast<double>(width_);
        value = std::max(value, static_cast<double>(min_));
        return {std::min(value, static_cast<double>(max_)), false};
    }
    return {static_cast<double>(max_), false};
}

void
Histogram::merge(const Histogram &other)
{
    wbsim_assert(counts_.size() == other.counts_.size()
                     && width_ == other.width_,
                 "merging histograms with different geometries");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    samples_ += other.samples_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

std::uint64_t
Histogram::minValue() const
{
    return samples_ == 0 ? 0 : min_;
}

double
Histogram::mean() const
{
    if (samples_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(samples_);
}

Count
Histogram::bucket(std::size_t i) const
{
    wbsim_assert(i < counts_.size(), "histogram bucket out of range");
    return counts_[i];
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    samples_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
    sum_ = 0.0;
}

std::string
Histogram::summary() const
{
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    std::ostringstream os;
    os << "n=" << samples_ << " mean=" << mean()
       << " min=" << minValue() << " max=" << max_ << " |";
    Count peak = 0;
    for (Count c : counts_)
        peak = std::max(peak, c);
    for (Count c : counts_) {
        std::size_t level = 0;
        if (peak > 0 && c > 0)
            level = 1 + (c * 6) / peak;
        os << glyphs[std::min<std::size_t>(level, 7)];
    }
    os << "|";
    return os.str();
}

void
StatSet::addScalar(const std::string &name, const Count *value)
{
    counts_[name] = value;
}

void
StatSet::addScalar(const std::string &name, const Counter *counter)
{
    counters_[name] = counter;
}

void
StatSet::addDouble(const std::string &name, const double *value)
{
    doubles_[name] = value;
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, ptr] : counts_)
        os << prefix << name << " " << *ptr << "\n";
    for (const auto &[name, ptr] : counters_)
        os << prefix << name << " " << ptr->value() << "\n";
    for (const auto &[name, ptr] : doubles_)
        os << prefix << name << " " << *ptr << "\n";
}

} // namespace wbsim::stats
