/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The workload generators must be reproducible across runs, platforms
 * and standard-library versions, so we implement our own xorshift128+
 * generator and distribution helpers rather than relying on
 * <random> (whose distributions are not specified bit-exactly).
 *
 * The draw methods are defined inline: the synthetic workload
 * generator sits on the simulator-baseline critical path and draws
 * several values per emitted record, so a call into random.cc per
 * draw is measurable. The sequences are part of the reproducibility
 * contract and must not change.
 */

#ifndef WBSIM_UTIL_RANDOM_HH
#define WBSIM_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace wbsim
{

/**
 * xorshift128+ PRNG. Small, fast, and deterministic everywhere.
 * Seeded via splitmix64 so that nearby seeds give independent
 * streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state0_;
        const std::uint64_t y = state1_;
        state0_ = y;
        x ^= x << 23;
        state1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return state1_ + y;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        wbsim_assert(bound != 0, "nextBelow(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 *
        // bound, negligible for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next())
             * static_cast<unsigned __int128>(bound)) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        wbsim_assert(lo <= hi, "nextRange with lo > hi");
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    nextBool(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /**
     * Draw an index according to a discrete weight vector.
     * Weights need not be normalised; all-zero weights return 0.
     */
    std::size_t
    nextWeighted(const std::vector<double> &weights)
    {
        return nextWeighted(weights, weightTotal(weights));
    }

    /**
     * nextWeighted with the total precomputed by weightTotal() —
     * callers that draw from a fixed weight vector per record hoist
     * the summation. @p total MUST equal weightTotal(weights) (the
     * left-to-right sum) or the draw mapping changes.
     */
    std::size_t
    nextWeighted(const std::vector<double> &weights, double total)
    {
        if (total <= 0.0)
            return 0;
        double draw = nextDouble() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            draw -= weights[i];
            if (draw < 0.0)
                return i;
        }
        return weights.size() - 1;
    }

    /** The left-to-right weight sum nextWeighted scales draws by. */
    static double
    weightTotal(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        return total;
    }

    /**
     * Geometric-ish burst length: 1 + number of successes of
     * repeated trials with probability @p p, capped at @p cap.
     */
    unsigned
    nextBurst(double p, unsigned cap)
    {
        unsigned length = 1;
        while (length < cap && nextBool(p))
            ++length;
        return length;
    }

  private:
    std::uint64_t state0_;
    std::uint64_t state1_;
};

/** splitmix64 step; used for seed expansion and hashing. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Hash two 64-bit values into one (for derived seeds). */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

} // namespace wbsim

#endif // WBSIM_UTIL_RANDOM_HH
