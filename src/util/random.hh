/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The workload generators must be reproducible across runs, platforms
 * and standard-library versions, so we implement our own xorshift128+
 * generator and distribution helpers rather than relying on
 * <random> (whose distributions are not specified bit-exactly).
 */

#ifndef WBSIM_UTIL_RANDOM_HH
#define WBSIM_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace wbsim
{

/**
 * xorshift128+ PRNG. Small, fast, and deterministic everywhere.
 * Seeded via splitmix64 so that nearby seeds give independent
 * streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

    /**
     * Draw an index according to a discrete weight vector.
     * Weights need not be normalised; all-zero weights return 0.
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /**
     * Geometric-ish burst length: 1 + number of successes of
     * repeated trials with probability @p p, capped at @p cap.
     */
    unsigned nextBurst(double p, unsigned cap);

  private:
    std::uint64_t state0_;
    std::uint64_t state1_;
};

/** splitmix64 step; used for seed expansion and hashing. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Hash two 64-bit values into one (for derived seeds). */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

} // namespace wbsim

#endif // WBSIM_UTIL_RANDOM_HH
