#include "util/options.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace wbsim
{

void
Options::declare(const std::string &name, const std::string &help,
                 const std::string &default_value, bool is_flag)
{
    decls_[name] = Decl{help, default_value, is_flag};
}

void
Options::parse(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::string value;
        bool has_value = false;
        if (auto eq = body.find('='); eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            has_value = true;
        }
        auto it = decls_.find(name);
        if (it == decls_.end())
            wbsim_fatal("unknown option --", name, "\n", usage());
        if (it->second.is_flag) {
            if (has_value)
                wbsim_fatal("flag --", name, " takes no value");
            values_[name] = "1";
        } else {
            if (!has_value) {
                if (i + 1 >= argc)
                    wbsim_fatal("option --", name, " needs a value");
                value = argv[++i];
            }
            values_[name] = value;
        }
    }
}

bool
Options::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Options::get(const std::string &name) const
{
    if (auto it = values_.find(name); it != values_.end())
        return it->second;
    if (auto it = decls_.find(name); it != decls_.end())
        return it->second.default_value;
    wbsim_panic("option ", name, " was never declared");
}

std::int64_t
Options::getInt(const std::string &name) const
{
    const std::string text = get(name);
    std::int64_t v = 0;
    if (!tryParseInt64(text, v))
        wbsim_fatal("option --", name, " expects an integer in "
                    "[-2^63, 2^63), got '", text, "'");
    return v;
}

std::uint64_t
Options::getUint(const std::string &name) const
{
    const std::string text = get(name);
    std::uint64_t v = 0;
    if (!tryParseUint64(text, v))
        wbsim_fatal("option --", name, " expects a non-negative "
                    "integer below 2^64, got '", text, "'");
    return v;
}

double
Options::getDouble(const std::string &name) const
{
    const std::string text = get(name);
    double v = 0.0;
    if (!tryParseDouble(text, v))
        wbsim_fatal("option --", name, " expects a finite number, "
                    "got '", text, "'");
    return v;
}

bool
Options::getFlag(const std::string &name) const
{
    return get(name) == "1";
}

std::string
Options::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [options]\n";
    for (const auto &[name, decl] : decls_) {
        os << "  --" << name;
        if (!decl.is_flag)
            os << "=<value>";
        os << "  " << decl.help;
        if (!decl.default_value.empty())
            os << " (default " << decl.default_value << ")";
        os << "\n";
    }
    return os.str();
}

namespace
{

/** Common strict-parse scaffolding: @p text must be non-empty, the
 *  conversion must consume all of it, and the C library must not
 *  have reported a range error. */
template <typename Value, typename Convert>
bool
strictParse(std::string_view text, Value &out, Convert convert)
{
    if (text.empty())
        return false;
    // strtoll & friends skip leading whitespace; the documented
    // grammar is "the whole of text is the number", so don't.
    if (std::isspace(static_cast<unsigned char>(text.front())))
        return false;
    // strtoll & friends need a NUL terminator; string_views into
    // larger buffers (wire fields) may not have one.
    std::string buffer(text);
    errno = 0;
    char *end = nullptr;
    Value v = convert(buffer.c_str(), &end);
    if (end != buffer.c_str() + buffer.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

} // namespace

bool
tryParseInt64(std::string_view text, std::int64_t &out)
{
    static_assert(sizeof(long long) == sizeof(std::int64_t));
    return strictParse<std::int64_t>(
        text, out, [](const char *s, char **end) {
            return std::strtoll(s, end, 0);
        });
}

bool
tryParseUint64(std::string_view text, std::uint64_t &out)
{
    // strtoull silently accepts "-1" as 2^64-1; a negative count is
    // a rejection, not a wrap.
    std::size_t first = text.find_first_not_of(" \t");
    if (first != std::string_view::npos && text[first] == '-')
        return false;
    static_assert(sizeof(unsigned long long) == sizeof(std::uint64_t));
    return strictParse<std::uint64_t>(
        text, out, [](const char *s, char **end) {
            return std::strtoull(s, end, 0);
        });
}

bool
tryParseDouble(std::string_view text, double &out)
{
    double v = 0.0;
    if (!strictParse<double>(text, v,
                             [](const char *s, char **end) {
                                 return std::strtod(s, end);
                             })
        || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

std::uint64_t
envUint(const char *name, std::uint64_t fallback)
{
    // getenv is only MT-unsafe against a concurrent setenv; nothing
    // in the program writes the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *text = std::getenv(name);
    if (!text || !*text)
        return fallback;
    std::uint64_t v = 0;
    if (!tryParseUint64(text, v)) {
        warn("ignoring malformed or out-of-range ", name, "='", text,
             "'");
        return fallback;
    }
    return v;
}

} // namespace wbsim
