#include "util/options.hh"

#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace wbsim
{

void
Options::declare(const std::string &name, const std::string &help,
                 const std::string &default_value, bool is_flag)
{
    decls_[name] = Decl{help, default_value, is_flag};
}

void
Options::parse(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::string value;
        bool has_value = false;
        if (auto eq = body.find('='); eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            has_value = true;
        }
        auto it = decls_.find(name);
        if (it == decls_.end())
            wbsim_fatal("unknown option --", name, "\n", usage());
        if (it->second.is_flag) {
            if (has_value)
                wbsim_fatal("flag --", name, " takes no value");
            values_[name] = "1";
        } else {
            if (!has_value) {
                if (i + 1 >= argc)
                    wbsim_fatal("option --", name, " needs a value");
                value = argv[++i];
            }
            values_[name] = value;
        }
    }
}

bool
Options::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Options::get(const std::string &name) const
{
    if (auto it = values_.find(name); it != values_.end())
        return it->second;
    if (auto it = decls_.find(name); it != decls_.end())
        return it->second.default_value;
    wbsim_panic("option ", name, " was never declared");
}

std::int64_t
Options::getInt(const std::string &name) const
{
    const std::string text = get(name);
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        wbsim_fatal("option --", name, " expects an integer, got '",
                    text, "'");
    return v;
}

std::uint64_t
Options::getUint(const std::string &name) const
{
    std::int64_t v = getInt(name);
    if (v < 0)
        wbsim_fatal("option --", name, " must be non-negative");
    return static_cast<std::uint64_t>(v);
}

double
Options::getDouble(const std::string &name) const
{
    const std::string text = get(name);
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        wbsim_fatal("option --", name, " expects a number, got '",
                    text, "'");
    return v;
}

bool
Options::getFlag(const std::string &name) const
{
    return get(name) == "1";
}

std::string
Options::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [options]\n";
    for (const auto &[name, decl] : decls_) {
        os << "  --" << name;
        if (!decl.is_flag)
            os << "=<value>";
        os << "  " << decl.help;
        if (!decl.default_value.empty())
            os << " (default " << decl.default_value << ")";
        os << "\n";
    }
    return os.str();
}

std::uint64_t
envUint(const char *name, std::uint64_t fallback)
{
    const char *text = std::getenv(name);
    if (!text || !*text)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        warn("ignoring malformed ", name, "='", text, "'");
        return fallback;
    }
    return v;
}

} // namespace wbsim
