/**
 * @file
 * Lightweight statistics package: counters, ratios, distributions,
 * and a named registry for dumping.
 *
 * Modelled loosely on gem5's Stats package but intentionally small:
 * stats here are plain values updated inline by the models, and the
 * registry exists only to give them names and a uniform dump format.
 */

#ifndef WBSIM_UTIL_STATS_HH
#define WBSIM_UTIL_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hh"

namespace wbsim::stats
{

/** A monotonically increasing event count. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(Count n) { value_ += n; return *this; }

    Count value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    Count value_ = 0;
};

/** Ratio of two counts, rendered as a fraction or percentage. */
double ratio(Count numerator, Count denominator);

/** Percentage (0-100) of two counts; 0 when denominator is 0. */
double percent(Count numerator, Count denominator);

/**
 * A quantile estimate plus an honesty flag: when the requested rank
 * lands in a histogram's overflow bucket, the value is clamped to
 * the observed maximum and `overflowed` is set so consumers can tell
 * a measured tail from a saturated one.
 */
struct Quantile
{
    double value = 0.0;
    bool overflowed = false;
};

/**
 * A histogram over a fixed integer range [0, buckets * bucketWidth);
 * values beyond the top bucket accumulate in an overflow bucket.
 * Tracks min, max, mean, and per-bucket counts.
 */
class Histogram
{
  public:
    /**
     * @param buckets number of fixed-width buckets before overflow.
     * @param bucket_width values per bucket (1 = unit-width).
     */
    explicit Histogram(std::size_t buckets = 64,
                       std::uint64_t bucket_width = 1);

    /** Record one sample of @p value. Inline: this sits on the
     *  write buffer's per-store path. */
    void
    sample(std::uint64_t value)
    {
        std::uint64_t scaled = width_ == 1 ? value : value / width_;
        std::size_t idx =
            std::min<std::uint64_t>(scaled, counts_.size() - 1);
        ++counts_[idx];
        ++samples_;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        sum_ += static_cast<double>(value);
    }

    /** Record @p count samples of @p value. */
    void sample(std::uint64_t value, Count count);

    Count samples() const { return samples_; }
    std::uint64_t minValue() const;
    std::uint64_t maxValue() const { return max_; }
    double mean() const;

    /**
     * The @p q-quantile (q in [0, 1]), linearly interpolated inside
     * the containing bucket and clamped to [minValue, maxValue].
     * Samples in the overflow bucket are treated as sitting at the
     * observed maximum. 0 when empty.
     */
    double quantile(double q) const;

    /**
     * Like quantile(), but also reports whether the requested rank
     * fell in the overflow bucket. An overflowed quantile is only a
     * lower bound: every overflow sample is known to be at least
     * buckets() * bucketWidth(), but the in-bucket distribution is
     * lost, so the estimate clamps to the observed maximum.
     */
    Quantile quantileWithOverflow(double q) const;

    /** Count of samples that landed in the overflow bucket. */
    Count overflowCount() const { return counts_.back(); }

    /**
     * Fold @p other into this histogram. Both must share the same
     * geometry (bucket count and width). Merging is associative and
     * commutative, so per-thread histograms from a sharded grid can
     * be combined in any order with a deterministic result.
     */
    void merge(const Histogram &other);

    /** Count in bucket @p i (i == buckets() means overflow). */
    Count bucket(std::size_t i) const;
    std::size_t buckets() const { return counts_.size() - 1; }
    std::uint64_t bucketWidth() const { return width_; }

    void reset();

    /** Render "mean=… min=… max=… n=…" plus sparkline of buckets. */
    std::string summary() const;

  private:
    std::vector<Count> counts_; // last slot is overflow
    std::uint64_t width_ = 1;
    Count samples_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of scalar statistics for uniform dumping.
 * Models register name → value accessors at construction time.
 */
class StatSet
{
  public:
    /** Register a scalar by value-snapshot (copied at dump time). */
    void addScalar(const std::string &name, const Count *value);
    void addScalar(const std::string &name, const Counter *counter);
    void addDouble(const std::string &name, const double *value);

    /** Write "name value" lines, one per stat, sorted by name. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::map<std::string, const Count *> counts_;
    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const double *> doubles_;
};

} // namespace wbsim::stats

#endif // WBSIM_UTIL_STATS_HH
