/**
 * @file
 * Minimal command-line option parsing for examples and tools.
 *
 * Supports "--name=value", "--name value", bare "--flag", and
 * positional arguments. Unknown options are fatal (user error).
 */

#ifndef WBSIM_UTIL_OPTIONS_HH
#define WBSIM_UTIL_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wbsim
{

/** Parsed command line: named options plus positionals. */
class Options
{
  public:
    /**
     * Declare an option before parsing.
     * @param name option name without leading dashes.
     * @param help one-line description.
     * @param default_value textual default ("" for flags).
     * @param is_flag true for boolean flags that take no value.
     */
    void declare(const std::string &name, const std::string &help,
                 const std::string &default_value = "",
                 bool is_flag = false);

    /** Parse argv; fatal() on unknown or malformed options. */
    void parse(int argc, const char *const *argv);

    bool has(const std::string &name) const;
    std::string get(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    std::uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** Program name from argv[0]. */
    const std::string &program() const { return program_; }

    /** Render a usage/help message. */
    std::string usage() const;

  private:
    struct Decl
    {
        std::string help;
        std::string default_value;
        bool is_flag = false;
    };

    std::map<std::string, Decl> decls_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positionals_;
    std::string program_;
};

/** @name Strict numeric parsing.
 *
 * The accepted grammar is the whole of @p text: no leading or
 * trailing junk, no empty strings. Out-of-range values are rejected,
 * never wrapped or saturated — these parsers front both the CLI and
 * the wbsim-serve network protocol, where a wrapped length or count
 * would be an exploitable lie. Integers accept the 0x/0 prefixes of
 * strtoll's base 0. */
/// @{
bool tryParseInt64(std::string_view text, std::int64_t &out);
bool tryParseUint64(std::string_view text, std::uint64_t &out);
bool tryParseDouble(std::string_view text, double &out);
/// @}

/** Read an environment variable as unsigned, or @p fallback. */
std::uint64_t envUint(const char *name, std::uint64_t fallback);

} // namespace wbsim

#endif // WBSIM_UTIL_OPTIONS_HH
