#include "util/random.hh"

#include "util/logging.hh"

namespace wbsim
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    // Mix each input through a full splitmix64 round; a single xor
    // of the raw values collides for small integers.
    std::uint64_t state = a;
    std::uint64_t mixed = splitmix64(state);
    state = mixed ^ b;
    return splitmix64(state);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    state0_ = splitmix64(s);
    state1_ = splitmix64(s);
    // A zero state would lock the generator at zero forever.
    if (state0_ == 0 && state1_ == 0)
        state1_ = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t x = state0_;
    const std::uint64_t y = state1_;
    state0_ = y;
    x ^= x << 23;
    state1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state1_ + y;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    wbsim_assert(bound != 0, "nextBelow(0)");
    // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound,
    // negligible for simulation purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next())
         * static_cast<unsigned __int128>(bound)) >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    wbsim_assert(lo <= hi, "nextRange with lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return 0;
    double draw = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return i;
    }
    return weights.size() - 1;
}

unsigned
Rng::nextBurst(double p, unsigned cap)
{
    unsigned length = 1;
    while (length < cap && nextBool(p))
        ++length;
    return length;
}

} // namespace wbsim
