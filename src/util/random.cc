#include "util/random.hh"

namespace wbsim
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    // Mix each input through a full splitmix64 round; a single xor
    // of the raw values collides for small integers.
    std::uint64_t state = a;
    std::uint64_t mixed = splitmix64(state);
    state = mixed ^ b;
    return splitmix64(state);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    state0_ = splitmix64(s);
    state1_ = splitmix64(s);
    // A zero state would lock the generator at zero forever.
    if (state0_ == 0 && state1_ == 0)
        state1_ = 1;
}

} // namespace wbsim
