#include "util/barchart.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace wbsim
{

BarChart::BarChart(std::vector<std::string> segment_names, unsigned width)
    : segment_names_(std::move(segment_names)), width_(width)
{
    wbsim_assert(width_ >= 10, "bar chart too narrow");
}

const char *
BarChart::glyphFor(std::size_t segment)
{
    static const char *glyphs[] = {"#", "o", ".", "x", "+", "~"};
    return glyphs[segment % (sizeof(glyphs) / sizeof(glyphs[0]))];
}

void
BarChart::beginGroup(const std::string &name)
{
    groups_.push_back({name, {}});
}

void
BarChart::addBar(StackedBar bar)
{
    wbsim_assert(!groups_.empty(), "addBar before beginGroup");
    wbsim_assert(bar.segments.size() == segment_names_.size(),
                 "bar segment count mismatch");
    groups_.back().bars.push_back(std::move(bar));
}

void
BarChart::render(std::ostream &os) const
{
    double max_total = scale_max_;
    std::size_t label_width = 0;
    for (const auto &group : groups_) {
        for (const auto &bar : group.bars) {
            double total = 0.0;
            for (double v : bar.segments)
                total += v;
            max_total = std::max(max_total, total);
            label_width = std::max(label_width, bar.label.size());
        }
    }
    if (max_total <= 0.0)
        max_total = 1.0;

    os << "legend:";
    for (std::size_t i = 0; i < segment_names_.size(); ++i)
        os << "  " << glyphFor(i) << " = " << segment_names_[i];
    os << "   (full width = " << max_total << ")\n";

    for (const auto &group : groups_) {
        if (!group.name.empty())
            os << group.name << "\n";
        for (const auto &bar : group.bars) {
            os << "  " << bar.label
               << std::string(label_width - bar.label.size(), ' ')
               << " |";
            double total = 0.0;
            unsigned drawn = 0;
            for (std::size_t i = 0; i < bar.segments.size(); ++i) {
                total += bar.segments[i];
                // Cumulative rounding keeps the stack length honest.
                auto upto = static_cast<unsigned>(
                    std::lround(total / max_total * width_));
                for (; drawn < upto; ++drawn)
                    os << glyphFor(i);
            }
            char buf[32];
            std::snprintf(buf, sizeof(buf), " %.3f", total);
            os << buf << "\n";
        }
    }
}

} // namespace wbsim
