/**
 * @file
 * gem5-flavoured status and error reporting.
 *
 * fatal() terminates because of a user error (bad configuration);
 * panic() terminates because of a simulator bug. Both print the
 * source location of the call. inform()/warn() report status without
 * stopping the simulation.
 */

#ifndef WBSIM_UTIL_LOGGING_HH
#define WBSIM_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/lint.hh"

namespace wbsim
{

/** Verbosity levels for runtime logging. */
enum class LogLevel
{
    Quiet,  //!< only warnings and errors
    Normal, //!< informational messages too
    Debug,  //!< everything
};

/** Process-wide log level; defaults to Normal. */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail
{

/* All diagnostic sinks are WBSIM_COLD: they allocate and stream
 * freely, and the hot-path analyzer (tools/wbsim_lint) stops its
 * traversal here. Reaching them from a hot path is fine — they only
 * execute when the simulation is already dying or narrating. */

[[noreturn]] WBSIM_COLD void
terminate(const char *kind, const char *file, int line,
          const std::string &message, int exit_code);

WBSIM_COLD void report(const char *kind, const std::string &message);

/** Fold a variadic pack into one string via operator<<. */
template <typename... Args>
WBSIM_COLD std::string
concat(Args &&...args)
{
    std::ostringstream os;
    ((os << std::forward<Args>(args)), ...);
    return os.str();
}

} // namespace detail

/** Informational message, suppressed under LogLevel::Quiet. */
template <typename... Args>
WBSIM_COLD void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Normal)
        detail::report("info", detail::concat(std::forward<Args>(args)...));
}

/** Debug message, shown only under LogLevel::Debug. */
template <typename... Args>
WBSIM_COLD void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::report("debug", detail::concat(std::forward<Args>(args)...));
}

/** Warning about suspicious but survivable conditions. */
template <typename... Args>
WBSIM_COLD void
warn(Args &&...args)
{
    detail::report("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort due to a user error (invalid configuration or input).
 * Exits with status 1.
 */
#define wbsim_fatal(...)                                                    \
    ::wbsim::detail::terminate("fatal", __FILE__, __LINE__,                 \
                               ::wbsim::detail::concat(__VA_ARGS__), 1)

/**
 * Abort due to an internal inconsistency (a simulator bug).
 * Calls std::abort().
 */
#define wbsim_panic(...)                                                    \
    ::wbsim::detail::terminate("panic", __FILE__, __LINE__,                 \
                               ::wbsim::detail::concat(__VA_ARGS__), -1)

/** Panic unless a simulator invariant holds. */
#define wbsim_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            wbsim_panic("assertion '" #cond "' failed. " __VA_ARGS__);      \
        }                                                                   \
    } while (false)

} // namespace wbsim

#endif // WBSIM_UTIL_LOGGING_HH
