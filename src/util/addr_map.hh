/**
 * @file
 * A small open-addressing hash map from addresses to POD values,
 * built for the write-buffer hot paths: the resident population is
 * bounded (a handful of buffer entries), lookups happen on every
 * simulated store and load miss, and `std::unordered_map`'s
 * per-node allocation and pointer chasing would eat most of the win
 * from indexing in the first place.
 *
 * Flat storage, linear probing, multiplicative hashing, tombstone
 * deletion with an amortised rebuild once tombstones accumulate.
 * Capacity is fixed at construction from the maximum live key count
 * (load factor <= 1/4), so inserts never allocate.
 */

#ifndef WBSIM_UTIL_ADDR_MAP_HH
#define WBSIM_UTIL_ADDR_MAP_HH

#include <cstdint>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace wbsim
{

/** Fixed-capacity flat hash map keyed by Addr. */
template <typename Value>
class AddrMap
{
  public:
    /** @param max_live most keys ever resident at once (> 0). */
    explicit AddrMap(std::size_t max_live)
    {
        wbsim_assert(max_live > 0, "AddrMap needs a positive capacity");
        std::size_t size = 16;
        while (size < max_live * 4)
            size *= 2;
        slots_.resize(size);
        scratch_.resize(size);
        shift_ = 64u - exactLog2(size);
        max_live_ = max_live;
    }

    /** Pointer to the value for @p key, or nullptr. */
    Value *
    find(Addr key)
    {
        std::size_t i = bucket(key);
        for (;;) {
            Slot &slot = slots_[i];
            if (slot.state == State::Empty)
                return nullptr;
            if (slot.state == State::Full && slot.key == key)
                return &slot.value;
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    const Value *
    find(Addr key) const
    {
        return const_cast<AddrMap *>(this)->find(key);
    }

    /**
     * Value for @p key, default-constructing it if absent.
     * The live-key bound from construction must not be exceeded.
     */
    Value &
    operator[](Addr key)
    {
        bool inserted = false;
        return insertOrFind(key, inserted);
    }

    /**
     * Single-probe combination of find and insert: returns the slot
     * for @p key, default-constructing it and setting @p inserted
     * when the key was absent. Saves the double probe of a find
     * followed by operator[] on the hot allocation path.
     */
    Value &
    insertOrFind(Addr key, bool &inserted)
    {
        if (used_ + tombstones_ > slots_.size() / 2)
            rebuild();
        std::size_t i = bucket(key);
        std::size_t grave = slots_.size(); // first tombstone seen
        for (;;) {
            Slot &slot = slots_[i];
            if (slot.state == State::Full && slot.key == key) {
                inserted = false;
                return slot.value;
            }
            if (slot.state == State::Empty) {
                wbsim_assert(used_ < max_live_,
                             "AddrMap live-key bound exceeded");
                Slot &home = grave < slots_.size() ? claimGrave(grave)
                                                   : slot;
                home.state = State::Full;
                home.key = key;
                home.value = Value{};
                ++used_;
                inserted = true;
                return home.value;
            }
            if (slot.state == State::Tombstone && grave == slots_.size())
                grave = i;
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    /** Remove @p key; it must be present. */
    void
    erase(Addr key)
    {
        std::size_t i = bucket(key);
        for (;;) {
            Slot &slot = slots_[i];
            wbsim_assert(slot.state != State::Empty,
                         "AddrMap::erase of a missing key");
            if (slot.state == State::Full && slot.key == key) {
                slot.state = State::Tombstone;
                --used_;
                ++tombstones_;
                return;
            }
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    std::size_t size() const { return used_; }

    void
    clear()
    {
        for (Slot &slot : slots_)
            slot.state = State::Empty;
        used_ = 0;
        tombstones_ = 0;
    }

    /** Visit every live (key, value) pair. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &slot : slots_)
            if (slot.state == State::Full)
                fn(slot.key, slot.value);
    }

  private:
    enum class State : std::uint8_t { Empty, Tombstone, Full };

    struct Slot
    {
        Addr key = 0;
        Value value{};
        State state = State::Empty;
    };

    std::size_t
    bucket(Addr key) const
    {
        return static_cast<std::size_t>(
            (key * 0x9E3779B97F4A7C15ull) >> shift_);
    }

    /** Reinsert live slots to shed accumulated tombstones. Uses a
     *  preallocated scratch vector: churn-heavy access patterns hit
     *  this every few dozen mutations, so it must not allocate. */
    void
    rebuild()
    {
        slots_.swap(scratch_);
        for (Slot &slot : slots_)
            slot.state = State::Empty;
        used_ = 0;
        tombstones_ = 0;
        for (const Slot &slot : scratch_)
            if (slot.state == State::Full)
                (*this)[slot.key] = slot.value;
    }

    /** Reuse the tombstone at @p index for a fresh insertion. */
    Slot &
    claimGrave(std::size_t index)
    {
        --tombstones_;
        return slots_[index];
    }

    std::vector<Slot> slots_;
    std::vector<Slot> scratch_; //!< rebuild() staging, same size
    unsigned shift_ = 0;
    std::size_t used_ = 0;
    std::size_t tombstones_ = 0;
    std::size_t max_live_ = 0;
};

} // namespace wbsim

#endif // WBSIM_UTIL_ADDR_MAP_HH
