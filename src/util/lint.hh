/**
 * @file
 * Hot-path contract annotations for wbsim_lint (DESIGN.md §10).
 *
 * The macros expand to `[[clang::annotate(...)]]` markers that the
 * standalone analyzer in tools/wbsim_lint reads from the AST; on
 * compilers without that attribute (GCC builds) they expand to
 * nothing, so annotating a declaration never changes codegen or
 * warnings anywhere.
 *
 * - WBSIM_HOT marks a function as a hot-path root: neither it nor
 *   anything it transitively calls within the project may allocate
 *   (WL-HOT-ALLOC) or dispatch virtually outside the documented
 *   escape hatches (WL-HOT-VIRTUAL).
 * - WBSIM_DEVIRT_OK marks a polymorphic base class (or a single
 *   virtual method) as a documented devirtualized escape hatch: the
 *   retirement engine's trigger/victim policy interfaces, whose
 *   concrete implementations are `final` and whose dispatch the
 *   engine monomorphises on its fast paths (DESIGN.md §9).
 * - WBSIM_COLD marks a debug/cross-check reference path (naive-scan
 *   verification, integrity checks): the analyzer's traversal stops
 *   there, so reference paths may allocate freely.
 */

#ifndef WBSIM_UTIL_LINT_HH
#define WBSIM_UTIL_LINT_HH

#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::annotate)
#define WBSIM_ANNOTATE(what) [[clang::annotate(what)]]
#endif
#endif

#ifndef WBSIM_ANNOTATE
#define WBSIM_ANNOTATE(what)
#endif

/** Allocation-free, devirtualized hot-path root (transitive). */
#define WBSIM_HOT WBSIM_ANNOTATE("wbsim::hot")

/** Documented virtual-dispatch escape hatch (policy interfaces). */
#define WBSIM_DEVIRT_OK WBSIM_ANNOTATE("wbsim::devirt_ok")

/** Debug/cross-check reference path; hot-path traversal stops here. */
#define WBSIM_COLD WBSIM_ANNOTATE("wbsim::cold")

#endif // WBSIM_UTIL_LINT_HH
