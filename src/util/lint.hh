/**
 * @file
 * Contract annotations for wbsim_lint (DESIGN.md §10).
 *
 * The macros expand to `[[clang::annotate(...)]]` markers that the
 * standalone analyzer in tools/wbsim_lint reads from the AST; on
 * compilers without that attribute (GCC builds) they expand to
 * nothing, so annotating a declaration never changes codegen or
 * warnings anywhere.
 *
 * Hot-path contracts (WL-HOT-ALLOC / WL-HOT-VIRTUAL):
 *
 * - WBSIM_HOT marks a function as a hot-path root: neither it nor
 *   anything it transitively calls within the project may allocate
 *   (WL-HOT-ALLOC) or dispatch virtually outside the documented
 *   escape hatches (WL-HOT-VIRTUAL).
 * - WBSIM_DEVIRT_OK marks a polymorphic base class (or a single
 *   virtual method) as a documented devirtualized escape hatch: the
 *   retirement engine's trigger/victim policy interfaces, whose
 *   concrete implementations are `final` and whose dispatch the
 *   engine monomorphises on its fast paths (DESIGN.md §9).
 * - WBSIM_COLD marks a debug/cross-check reference path (naive-scan
 *   verification, integrity checks): the analyzer's traversal stops
 *   there, so reference paths may allocate freely.
 *
 * Concurrency contracts (WL-LOCK-GUARD / WL-LOCK-ORDER):
 *
 * - WBSIM_GUARDED_BY(m) on a data member declares that the member is
 *   protected by the capability `m` — normally a sibling
 *   `std::mutex` member, optionally a virtual capability name for
 *   state with a non-mutex protection discipline (the bus arbiter's
 *   single-driver pending set). Every touch of the member must
 *   happen in a function that demonstrably holds `m`: it constructs
 *   a `lock_guard`/`unique_lock`/`scoped_lock` on `m` (or calls
 *   `m.lock()`) in an enclosing scope, or it is annotated
 *   WBSIM_REQUIRES(m). Constructors and destructors of the owning
 *   class are exempt (no concurrent access can exist yet/anymore).
 * - WBSIM_REQUIRES(m) on a function declares that callers must hold
 *   `m` when calling it (the `*Locked()` helper idiom). For
 *   mutex-backed capabilities the analyzer also checks every call
 *   site; for virtual capabilities the annotation gates the guarded
 *   members only.
 * - WBSIM_ACQUIRES_BEFORE(m) on a mutex member declares a lock-order
 *   edge: this mutex, when nested with `m`, is always acquired
 *   first. The analyzer collects every nested-acquire path (in-body
 *   and across calls) and requires each to follow a declared edge;
 *   an undeclared or inverted nesting is a WL-LOCK-ORDER error, so
 *   the declared hierarchy is the complete deadlock story. Name a
 *   same-class member directly, a foreign one as `Class::member`.
 *
 * Determinism contract (WL-DETERMINISM):
 *
 * - WBSIM_DETERMINISTIC marks a function whose transitive closure
 *   must be reproducible byte-for-byte: no wall-clock reads, no
 *   non-seeded randomness, no iteration over unordered containers
 *   (hash order feeds emitted bytes). WBSIM_HOT roots are checked
 *   too — the simulator core is the original determinism domain.
 * - WBSIM_NONDET_OK exempts one function's *body* from the
 *   determinism checks while traversal continues into its callees:
 *   the escape hatch for sites that are legitimately
 *   nondeterministic without perturbing emitted bytes (retry backoff
 *   sleeps, stats latency timestamps). Every use carries a comment
 *   justifying why the nondeterminism cannot reach output bytes.
 */

#ifndef WBSIM_UTIL_LINT_HH
#define WBSIM_UTIL_LINT_HH

#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::annotate)
#define WBSIM_ANNOTATE(what) [[clang::annotate(what)]]
#endif
#endif

#ifndef WBSIM_ANNOTATE
#define WBSIM_ANNOTATE(what)
#endif

/** Allocation-free, devirtualized hot-path root (transitive). */
#define WBSIM_HOT WBSIM_ANNOTATE("wbsim::hot")

/** Documented virtual-dispatch escape hatch (policy interfaces). */
#define WBSIM_DEVIRT_OK WBSIM_ANNOTATE("wbsim::devirt_ok")

/** Debug/cross-check reference path; hot-path traversal stops here. */
#define WBSIM_COLD WBSIM_ANNOTATE("wbsim::cold")

/** Member is protected by capability @p m (WL-LOCK-GUARD). */
#define WBSIM_GUARDED_BY(m) WBSIM_ANNOTATE("wbsim::guarded_by:" #m)

/** Callers must hold capability @p m (WL-LOCK-GUARD). */
#define WBSIM_REQUIRES(m) WBSIM_ANNOTATE("wbsim::requires:" #m)

/** This mutex is acquired before @p m when nested (WL-LOCK-ORDER). */
#define WBSIM_ACQUIRES_BEFORE(m) \
    WBSIM_ANNOTATE("wbsim::acquires_before:" #m)

/** Byte-reproducible root: the transitive closure must be free of
 *  wall-clock, unseeded randomness, and unordered iteration
 *  (WL-DETERMINISM). */
#define WBSIM_DETERMINISTIC WBSIM_ANNOTATE("wbsim::deterministic")

/** Body-level determinism escape hatch: this function's own body is
 *  exempt (callees are still checked). Justify every use in a
 *  comment beside the annotation (WL-DETERMINISM). */
#define WBSIM_NONDET_OK WBSIM_ANNOTATE("wbsim::nondet_ok")

#endif // WBSIM_UTIL_LINT_HH
