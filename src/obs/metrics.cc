#include "obs/metrics.hh"

#include "util/logging.hh"

namespace wbsim::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

int
MetricsRegistry::find(const std::string &name) const
{
    for (std::size_t i = 0; i < metrics_.size(); ++i)
        if (metrics_[i].name == name)
            return static_cast<int>(i);
    return -1;
}

MetricId
MetricsRegistry::counter(const std::string &name)
{
    if (int i = find(name); i >= 0) {
        const Meta &meta = metrics_[static_cast<std::size_t>(i)];
        wbsim_assert(meta.kind == MetricKind::Counter,
                     "metric '", name, "' re-registered as a counter");
        return meta.slot;
    }
    auto slot = static_cast<MetricId>(counters_.size());
    counters_.push_back(0);
    metrics_.push_back({name, MetricKind::Counter, slot});
    return slot;
}

MetricId
MetricsRegistry::gauge(const std::string &name, GaugeMerge merge)
{
    if (int i = find(name); i >= 0) {
        const Meta &meta = metrics_[static_cast<std::size_t>(i)];
        wbsim_assert(meta.kind == MetricKind::Gauge,
                     "metric '", name, "' re-registered as a gauge");
        wbsim_assert(gauge_merge_[meta.slot] == merge,
                     "gauge '", name,
                     "' re-registered with a different merge policy");
        return meta.slot;
    }
    auto slot = static_cast<MetricId>(gauges_.size());
    gauges_.push_back(0);
    gauge_merge_.push_back(merge);
    metrics_.push_back({name, MetricKind::Gauge, slot});
    return slot;
}

MetricId
MetricsRegistry::histogram(const std::string &name, std::size_t buckets,
                           std::uint64_t bucket_width)
{
    if (int i = find(name); i >= 0) {
        const Meta &meta = metrics_[static_cast<std::size_t>(i)];
        wbsim_assert(meta.kind == MetricKind::Histogram,
                     "metric '", name,
                     "' re-registered as a histogram");
        const stats::Histogram &h = histograms_[meta.slot];
        wbsim_assert(h.buckets() == buckets
                         && h.bucketWidth() == bucket_width,
                     "histogram '", name,
                     "' re-registered with a different geometry");
        return meta.slot;
    }
    auto slot = static_cast<MetricId>(histograms_.size());
    histograms_.emplace_back(buckets, bucket_width);
    metrics_.push_back({name, MetricKind::Histogram, slot});
    return slot;
}

const std::string &
MetricsRegistry::name(std::size_t i) const
{
    wbsim_assert(i < metrics_.size(), "metric index out of range");
    return metrics_[i].name;
}

MetricKind
MetricsRegistry::kind(std::size_t i) const
{
    wbsim_assert(i < metrics_.size(), "metric index out of range");
    return metrics_[i].kind;
}

Count
MetricsRegistry::counterValue(std::size_t i) const
{
    wbsim_assert(i < metrics_.size()
                     && metrics_[i].kind == MetricKind::Counter,
                 "not a counter");
    return counters_[metrics_[i].slot];
}

std::int64_t
MetricsRegistry::gaugeValue(std::size_t i) const
{
    wbsim_assert(i < metrics_.size()
                     && metrics_[i].kind == MetricKind::Gauge,
                 "not a gauge");
    return gauges_[metrics_[i].slot];
}

const stats::Histogram &
MetricsRegistry::histogramValue(std::size_t i) const
{
    wbsim_assert(i < metrics_.size()
                     && metrics_[i].kind == MetricKind::Histogram,
                 "not a histogram");
    return histograms_[metrics_[i].slot];
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    wbsim_assert(metrics_.size() == other.metrics_.size(),
                 "merging registries with different metric sets");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        wbsim_assert(metrics_[i].name == other.metrics_[i].name
                         && metrics_[i].kind == other.metrics_[i].kind,
                     "merging registries with different metric sets");
    }
    for (std::size_t i = 0; i < counters_.size(); ++i)
        counters_[i] += other.counters_[i];
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        switch (gauge_merge_[i]) {
          case GaugeMerge::Max:
            gauges_[i] = std::max(gauges_[i], other.gauges_[i]);
            break;
          case GaugeMerge::LastWriter:
            // The merged-in shard is the later writer by convention;
            // shards combine in a fixed order, so this stays
            // deterministic.
            gauges_[i] = other.gauges_[i];
            break;
        }
    }
    for (std::size_t i = 0; i < histograms_.size(); ++i)
        histograms_[i].merge(other.histograms_[i]);
}

void
MetricsRegistry::reset()
{
    for (Count &c : counters_)
        c = 0;
    for (std::int64_t &g : gauges_)
        g = 0;
    for (stats::Histogram &h : histograms_)
        h.reset();
}

} // namespace wbsim::obs
