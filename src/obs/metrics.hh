/**
 * @file
 * MetricsRegistry: named counters, gauges, and fixed-bucket latency
 * histograms that the core models publish into.
 *
 * The registry is built for the simulator's hot paths: metrics are
 * registered once up front and referred to by small integer handles,
 * values live in flat arrays, and every publish operation is an
 * indexed add/store with no allocation, no locking, and no name
 * lookup. Components hold a `MetricsRegistry *` that is null until a
 * sink is attached, so an un-observed run pays one predictable
 * branch per publish site (DESIGN.md §8).
 *
 * Registration is idempotent by name: attaching the same component
 * twice (e.g. after a snapshot restore) reuses the existing handles,
 * and per-thread registries with identical registration order can be
 * combined with merge().
 */

#ifndef WBSIM_OBS_METRICS_HH
#define WBSIM_OBS_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/lint.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace wbsim::obs
{

/** Handle to a registered metric (index into the registry). */
using MetricId = std::uint32_t;

/** What a registered metric is. */
enum class MetricKind : std::uint8_t
{
    Counter, //!< monotonically increasing count
    Gauge,   //!< last-written level (e.g. buffer occupancy)
    Histogram, //!< fixed-bucket value distribution
};

/** Printable name for a MetricKind. */
const char *metricKindName(MetricKind kind);

/**
 * How a gauge combines when per-thread shards merge. Counters add
 * and histograms fold either way, but a gauge is a *level*, and the
 * right way to reconcile two levels depends on what it measures:
 * a high-water-mark style gauge wants the peak, while an
 * occupancy-style gauge wants the value the later shard finished
 * with (a shard that drained to idle must not lose to one that
 * happened to peak higher).
 */
enum class GaugeMerge : std::uint8_t
{
    Max,        //!< peak across shards (high-water style)
    LastWriter, //!< the merged-in shard's value wins (level style)
};

/** Registry of named metrics with flat, allocation-free hot paths. */
class MetricsRegistry
{
  public:
    /** Register (or look up) a counter named @p name. */
    MetricId counter(const std::string &name);

    /**
     * Register (or look up) a gauge named @p name. The @p merge
     * policy is fixed at registration time; re-registering the same
     * gauge must agree on it.
     */
    MetricId gauge(const std::string &name,
                   GaugeMerge merge = GaugeMerge::Max);

    /**
     * Register (or look up) a histogram named @p name with
     * @p buckets fixed-width buckets of @p bucket_width values each
     * (values beyond the range land in an overflow bucket). The
     * geometry of an existing histogram must match.
     */
    MetricId histogram(const std::string &name, std::size_t buckets,
                       std::uint64_t bucket_width = 1);

    /** @name Hot-path publish operations (handles must be valid). */
    /// @{
    WBSIM_HOT void
    add(MetricId id, Count n = 1)
    {
        counters_[id] += n;
    }

    WBSIM_HOT void
    set(MetricId id, std::int64_t value)
    {
        gauges_[id] = value;
    }

    WBSIM_HOT void
    sample(MetricId id, std::uint64_t value)
    {
        histograms_[id].sample(value);
    }
    /// @}

    /** @name Read-side accessors (export and tests). */
    /// @{
    std::size_t size() const { return metrics_.size(); }
    const std::string &name(std::size_t i) const;
    MetricKind kind(std::size_t i) const;
    Count counterValue(std::size_t i) const;
    std::int64_t gaugeValue(std::size_t i) const;
    const stats::Histogram &histogramValue(std::size_t i) const;
    /// @}

    /**
     * Fold @p other into this registry. Both must have registered
     * the same metrics in the same order (the per-thread-shard
     * pattern); histograms merge, counters add, and each gauge
     * follows the GaugeMerge policy it was registered with.
     */
    void merge(const MetricsRegistry &other);

    /** Zero every value; registrations are kept. */
    void reset();

  private:
    /** One registered metric: its identity plus a slot index into
     *  the kind-specific flat array. */
    struct Meta
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        MetricId slot = 0;
    };

    /** Index of the metric named @p name, or -1. */
    int find(const std::string &name) const;

    std::vector<Meta> metrics_;
    std::vector<Count> counters_;
    std::vector<std::int64_t> gauges_;
    std::vector<GaugeMerge> gauge_merge_; // parallel to gauges_
    std::vector<stats::Histogram> histograms_;
};

} // namespace wbsim::obs

#endif // WBSIM_OBS_METRICS_HH
