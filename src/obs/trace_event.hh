/**
 * @file
 * Chrome trace_event exporter: turns the EventLog ring and the
 * Timeline into a JSON document loadable in Perfetto or
 * chrome://tracing.
 *
 * Mapping (one simulated cycle = one trace microsecond):
 *  - stall events (buffer-full, read-access, hazard, barrier) become
 *    complete ("X") slices with their stall duration, on a track per
 *    stall class;
 *  - write-buffer L2 writes and cache misses become instant ("i")
 *    events with their payload in args;
 *  - the Timeline becomes counter ("C") series, one point per epoch,
 *    so the stall-density series plots directly under the slices.
 */

#ifndef WBSIM_OBS_TRACE_EVENT_HH
#define WBSIM_OBS_TRACE_EVENT_HH

#include <ostream>

#include "obs/export.hh"

namespace wbsim
{
class EventLog;
}

namespace wbsim::obs
{

class Timeline;

/**
 * Write one trace_event JSON document from @p log and/or
 * @p timeline (either may be null; an empty trace is still valid).
 */
void writeTraceEventJson(std::ostream &os, const EventLog *log,
                         const Timeline *timeline,
                         const Provenance &provenance);

} // namespace wbsim::obs

#endif // WBSIM_OBS_TRACE_EVENT_HH
