/**
 * @file
 * Timeline: bounded cycle-attribution series for stall clustering.
 *
 * End-of-run aggregates (SimResults) answer "how much time did each
 * stall class cost" but not "when" — the clustering that aggregates
 * hide is exactly what LSM-stability and write-latency studies chase
 * with phase timelines. The Timeline aggregates per-channel cycle
 * counts into fixed-width cycle epochs; whenever the run outgrows
 * the epoch array the epoch width doubles and adjacent bins fold
 * together, so a billion-cycle run still yields at most `maxEpochs`
 * plottable points per channel with no allocation after the first
 * resize (DESIGN.md §8).
 */

#ifndef WBSIM_OBS_TIMELINE_HH
#define WBSIM_OBS_TIMELINE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace wbsim::obs
{

/** What a timeline bin accumulates. One slot per channel per epoch. */
enum class Channel : std::uint8_t
{
    BufferFullStall, //!< buffer-full stall cycles (Table 3 "F")
    ReadAccessStall, //!< L2-read-access stall cycles (Table 3 "R")
    HazardStall,     //!< load-hazard stall cycles (Table 3 "L")
    IFetchStall,     //!< §4.3 L2-I-fetch stall cycles
    BarrierStall,    //!< barrier-drain stall cycles
    WbWords,         //!< words retired/flushed to L2
    Stores,          //!< stores presented to the buffer
    OccupancySum,    //!< sum of occupancy sampled at each store
    BusBusy,         //!< shared-bus occupancy cycles (§14 topology)
};

/** Number of Channel values (array extent). */
constexpr std::size_t kChannels = 9;

/** Printable name for a Channel. */
const char *channelName(Channel channel);

/** Fixed-epoch, bounded, per-channel cycle-attribution series. */
class Timeline
{
  public:
    /**
     * @param epoch_cycles initial epoch width in cycles.
     * @param max_epochs bound on the series length; outgrowing it
     *        doubles the epoch width and folds bins pairwise.
     */
    explicit Timeline(Cycle epoch_cycles = 10'000,
                      std::size_t max_epochs = 1024);

    /** Accumulate @p value into @p channel's bin for @p cycle. The
     *  first call pins the timeline origin to that cycle. */
    void
    add(Channel channel, Cycle cycle, Count value)
    {
        if (value == 0)
            return;
        std::size_t epoch = epochOf(cycle);
        bins_[epoch * kChannels + static_cast<std::size_t>(channel)] +=
            value;
    }

    /** @name Read-side accessors (export and tests). */
    /// @{
    /** Epochs with at least one recorded cycle before or at them. */
    std::size_t epochs() const { return used_; }
    /** Current epoch width (grows by doubling). */
    Cycle epochCycles() const { return epoch_cycles_; }
    /** Cycle of the first event (epoch 0 starts here). */
    Cycle origin() const { return origin_; }
    /** Accumulated value for (@p epoch, @p channel). */
    Count value(std::size_t epoch, Channel channel) const;
    /** Total across all epochs for @p channel. */
    Count total(Channel channel) const;
    /// @}

    void reset();

  private:
    /** Bin index for @p cycle, folding the series if it overflows. */
    std::size_t epochOf(Cycle cycle);

    /** Halve the resolution: double the width, fold bins pairwise. */
    void fold();

    Cycle epoch_cycles_;
    std::size_t max_epochs_;
    Cycle origin_ = 0;
    bool started_ = false;
    std::size_t used_ = 0;
    std::vector<Count> bins_; //!< [epoch][channel], flat
};

} // namespace wbsim::obs

#endif // WBSIM_OBS_TIMELINE_HH
