/**
 * @file
 * Minimal JSON support for the run artifacts: a streaming writer
 * with automatic comma/indent management, and a small recursive-
 * descent parser used by the round-trip tests and artifact tooling.
 *
 * Scope is deliberately tiny — just what the exporters need. Doubles
 * are emitted with max_digits10 precision so every value re-parses
 * to the identical bit pattern (the round-trip tests compare
 * SimResults field-for-field with exact equality).
 */

#ifndef WBSIM_OBS_JSON_HH
#define WBSIM_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace wbsim::obs
{

/** Streaming JSON writer; nesting and commas are managed for you. */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level (0 = compact). */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    /** @name Structure. Objects/arrays nest; key() precedes any
     *  value or container opened inside an object. */
    /// @{
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(const std::string &name);
    /// @}

    /** @name Values. */
    /// @{
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(int v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    /// @}

    /** key(name) + value(v). */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

  private:
    /** Comma/newline/indent before a value or key at this position. */
    void separate();
    void indentLine();

    std::ostream &os_;
    int indent_;
    /** One frame per open container: counts emitted members. */
    std::vector<std::size_t> counts_;
    bool after_key_ = false;
};

/** Escape @p s per JSON string rules (quotes not included). */
std::string jsonEscape(const std::string &s);

/** A parsed JSON value (tree form; fine for artifact-sized files). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isBool() const { return kind_ == Kind::Bool; }
    /** True when uint() is safe: a number written without sign,
     *  fraction, or exponent. */
    bool isUint() const { return kind_ == Kind::Number && integral_; }

    /** @name Typed accessors; fatal() on kind mismatch. */
    /// @{
    bool boolean() const;
    double number() const;
    /** The number as uint64 (exact when the text was integral). */
    std::uint64_t uint() const;
    const std::string &string() const;
    const std::vector<JsonValue> &array() const;
    /** All object members (sorted by key); fatal() if not an object.
     *  Lets strict decoders reject unknown keys. */
    const std::map<std::string, JsonValue> &object() const;
    /// @}

    /** Object member @p name; fatal() if absent or not an object. */
    const JsonValue &at(const std::string &name) const;
    /** True if this is an object with a member @p name. */
    bool has(const std::string &name) const;

    /**
     * Parse @p text as one JSON document. fatal() on malformed
     * input — artifacts are machine-written, so damage is a bug.
     */
    static JsonValue parse(const std::string &text);

    /**
     * Non-fatal parse for untrusted input (the wbsim-serve wire
     * protocol): on malformed text returns false and describes the
     * damage in @p error instead of terminating the process.
     */
    static bool tryParse(const std::string &text, JsonValue &out,
                         std::string &error);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::uint64_t uint_ = 0;
    bool integral_ = false;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

} // namespace wbsim::obs

#endif // WBSIM_OBS_JSON_HH
