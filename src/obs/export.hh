/**
 * @file
 * Machine-readable run artifacts: JSON and CSV emitters for
 * SimResults, MetricsRegistry contents, and whole experiment grids,
 * each stamped with a provenance header so an artifact is traceable
 * to the exact machine configuration, seed, and build that produced
 * it. parseSimResultsJson() round-trips the JSON artifact back into
 * a SimResults, field-for-field.
 */

#ifndef WBSIM_OBS_EXPORT_HH
#define WBSIM_OBS_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "sim/results.hh"
#include "util/lint.hh"
#include "util/types.hh"

namespace wbsim::obs
{

/**
 * Where an artifact came from: enough to reproduce the run. Stamped
 * into every JSON export under the "provenance" key.
 */
struct Provenance
{
    /** MachineConfig::stateFingerprint() of the simulated machine. */
    std::uint64_t machineFingerprint = 0;
    /** MachineConfig::describe() of the simulated machine. */
    std::string machine;
    /** Workload generator seed. */
    std::uint64_t seed = 0;
    /** Measured instructions. */
    Count instructions = 0;
    /** Warmup instructions before the measurement window. */
    Count warmup = 0;
    /** Compiler and assertion mode; defaults to this build's. */
    std::string buildFlags = defaultBuildFlags();

    /** "gcc 13.2.0 release" / "... debug-assertions" for this build. */
    static std::string defaultBuildFlags();
};

/** Emit the "provenance" member into an open JSON object. */
void writeProvenance(JsonWriter &json, const Provenance &provenance);

/** @name SimResults artifacts. */
/// @{
/** One run as a JSON document (schema wbsim-sim-results-v1). The
 *  figure pipeline pins these bytes, so the writer is a
 *  deterministic root (WL-DETERMINISM). */
WBSIM_DETERMINISTIC void
writeSimResultsJson(std::ostream &os, const SimResults &results,
                    const Provenance &provenance);

/**
 * The body of a wbsim-sim-results-v1 document as one JSON object
 * written into an already-open @p json stream. This is the shared
 * renderer behind writeSimResultsJson() and the wbsim-serve per-cell
 * payloads, so a served cell is byte-identical to a local artifact.
 */
void writeSimResultsObject(JsonWriter &json, const SimResults &results,
                           const Provenance &provenance);

/**
 * Re-parse a writeSimResultsJson() document. Every stored field is
 * restored exactly (doubles included); derived fields (rates, stall
 * percentages) are re-derived. fatal() on malformed input.
 */
SimResults parseSimResultsJson(const std::string &text);

/** Rebuild a SimResults from an already-parsed wbsim-sim-results-v1
 *  object (the serve client's path). fatal() on schema mismatch. */
SimResults simResultsFromJson(const JsonValue &doc);

/** The CSV column header shared by all SimResults CSV emitters. */
std::string simResultsCsvHeader();

/** One SimResults as a CSV row matching simResultsCsvHeader(). */
void writeSimResultsCsvRow(std::ostream &os, const SimResults &results);

/** Header plus one row per run. */
void writeSimResultsCsv(std::ostream &os,
                        const std::vector<SimResults> &runs);
/// @}

/** @name Experiment-grid artifacts (results[benchmark][variant]). */
/// @{
/** A whole grid as JSON (schema wbsim-experiment-grid-v1). */
void writeGridJson(std::ostream &os, const std::string &id,
                   const std::string &title,
                   const std::vector<std::string> &benchmarks,
                   const std::vector<std::string> &variants,
                   const std::vector<std::vector<SimResults>> &results,
                   const Provenance &provenance);

/** A whole grid as CSV: benchmark,variant + the SimResults columns. */
void writeGridCsv(std::ostream &os,
                  const std::vector<std::string> &benchmarks,
                  const std::vector<std::string> &variants,
                  const std::vector<std::vector<SimResults>> &results);
/// @}

/** @name MetricsRegistry artifacts. */
/// @{
/**
 * Registry contents as JSON (schema wbsim-metrics-v1): counters and
 * gauges as scalars, histograms with mean/min/max/p50/p95/p99 and
 * raw bucket counts.
 */
void writeMetricsJson(std::ostream &os, const MetricsRegistry &registry,
                      const Provenance &provenance);

/** The "metrics" array of a wbsim-metrics-v1 document written into
 *  an already-open @p json stream (shared with wbsim-serve stats
 *  responses). */
void writeMetricsArray(JsonWriter &json, const MetricsRegistry &registry);

/** Registry contents as CSV (name, kind, n, value/mean, quantiles). */
void writeMetricsCsv(std::ostream &os,
                     const MetricsRegistry &registry);
/// @}

} // namespace wbsim::obs

#endif // WBSIM_OBS_EXPORT_HH
