#include "obs/trace_event.hh"

#include <sstream>

#include "obs/timeline.hh"
#include "sim/event_log.hh"

namespace wbsim::obs
{

namespace
{

/** Track (tid) layout; one lane per event family in the viewer. */
enum Track : int
{
    kTrackCpu = 0,        //!< loads/stores/ifetch instants
    kTrackBufferFull = 1, //!< buffer-full stall slices
    kTrackReadAccess = 2, //!< L2-read-access stall slices
    kTrackHazard = 3,     //!< load-hazard stall slices
    kTrackBarrier = 4,    //!< barrier-drain stall slices
    kTrackWbWrites = 5,   //!< write-buffer L2 transfer instants
};

const char *
trackName(int tid)
{
    switch (tid) {
      case kTrackCpu:
        return "cpu accesses";
      case kTrackBufferFull:
        return "stall: buffer-full";
      case kTrackReadAccess:
        return "stall: read-access";
      case kTrackHazard:
        return "stall: load-hazard";
      case kTrackBarrier:
        return "stall: barrier";
      case kTrackWbWrites:
        return "wb writes";
    }
    return "?";
}

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

/** Common prefix of every event object. */
void
eventHead(JsonWriter &json, const char *name, const char *ph,
          Cycle ts, int tid)
{
    json.beginObject();
    json.field("name", name);
    json.field("ph", ph);
    json.field("ts", static_cast<std::uint64_t>(ts));
    json.field("pid", 0);
    json.field("tid", tid);
}

/** One X slice with a duration and an optional served flag. */
void
slice(JsonWriter &json, const char *name, int tid,
      const SimEventRecord &e)
{
    eventHead(json, name, "X", e.cycle, tid);
    json.field("dur", e.a);
    json.key("args").beginObject();
    if (e.addr)
        json.field("addr", hexAddr(e.addr));
    json.field("cycles", e.a);
    json.endObject();
    json.endObject();
}

/** One instant event with the address in args. */
void
instant(JsonWriter &json, const char *name, int tid,
        const SimEventRecord &e)
{
    eventHead(json, name, "i", e.cycle, tid);
    json.field("s", "t"); // thread-scoped instant
    json.key("args").beginObject();
    if (e.addr)
        json.field("addr", hexAddr(e.addr));
    if (e.a)
        json.field("a", e.a);
    json.endObject();
    json.endObject();
}

void
writeLogEvents(JsonWriter &json, const EventLog &log)
{
    log.forEach([&](const SimEventRecord &e) {
        switch (e.kind) {
          case SimEventKind::BufferFullStall:
            slice(json, "buffer-full", kTrackBufferFull, e);
            break;
          case SimEventKind::ReadAccessStall:
            slice(json, "read-access", kTrackReadAccess, e);
            break;
          case SimEventKind::Hazard:
            eventHead(json, "hazard", "X", e.cycle, kTrackHazard);
            json.field("dur", e.a);
            json.key("args").beginObject();
            json.field("addr", hexAddr(e.addr));
            json.field("served_from_wb", e.b != 0);
            json.endObject();
            json.endObject();
            break;
          case SimEventKind::Barrier:
            slice(json, "barrier", kTrackBarrier, e);
            break;
          case SimEventKind::WbWrite:
            eventHead(json, "wb-write", "i", e.cycle, kTrackWbWrites);
            json.field("s", "t");
            json.key("args").beginObject();
            json.field("addr", hexAddr(e.addr));
            json.field("words", e.a);
            json.endObject();
            json.endObject();
            break;
          case SimEventKind::LoadHit:
            instant(json, "load-hit", kTrackCpu, e);
            break;
          case SimEventKind::LoadMiss:
            instant(json, "load-miss", kTrackCpu, e);
            break;
          case SimEventKind::Store:
            instant(json, "store", kTrackCpu, e);
            break;
          case SimEventKind::IFetchMiss:
            instant(json, "ifetch-miss", kTrackCpu, e);
            break;
        }
    });
}

void
writeTimelineCounters(JsonWriter &json, const Timeline &timeline)
{
    for (std::size_t e = 0; e < timeline.epochs(); ++e) {
        Cycle ts = timeline.origin()
            + static_cast<Cycle>(e) * timeline.epochCycles();
        eventHead(json, "stall cycles / epoch", "C", ts, 0);
        json.key("args").beginObject();
        json.field("buffer_full",
                   timeline.value(e, Channel::BufferFullStall));
        json.field("read_access",
                   timeline.value(e, Channel::ReadAccessStall));
        json.field("load_hazard",
                   timeline.value(e, Channel::HazardStall));
        json.field("ifetch", timeline.value(e, Channel::IFetchStall));
        json.field("barrier",
                   timeline.value(e, Channel::BarrierStall));
        json.endObject();
        json.endObject();

        eventHead(json, "wb traffic / epoch", "C", ts, 0);
        json.key("args").beginObject();
        json.field("words", timeline.value(e, Channel::WbWords));
        json.endObject();
        json.endObject();

        // Only multi-core runs feed the bus channel; emitting it
        // conditionally keeps every single-core trace document
        // byte-identical to the pre-topology format.
        if (timeline.total(Channel::BusBusy) != 0) {
            eventHead(json, "bus occupancy / epoch", "C", ts, 0);
            json.key("args").beginObject();
            json.field("busy", timeline.value(e, Channel::BusBusy));
            json.endObject();
            json.endObject();
        }

        Count stores = timeline.value(e, Channel::Stores);
        Count occ_sum = timeline.value(e, Channel::OccupancySum);
        eventHead(json, "mean wb occupancy", "C", ts, 0);
        json.key("args").beginObject();
        json.field("occupancy",
                   stores == 0 ? 0.0
                               : static_cast<double>(occ_sum)
                           / static_cast<double>(stores));
        json.endObject();
        json.endObject();
    }
}

} // namespace

void
writeTraceEventJson(std::ostream &os, const EventLog *log,
                    const Timeline *timeline,
                    const Provenance &provenance)
{
    JsonWriter json(os);
    json.beginObject();
    json.key("traceEvents").beginArray();

    // Metadata: name the process and each track.
    json.beginObject();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", 0);
    json.key("args").beginObject();
    json.field("name", "wbsim");
    json.endObject();
    json.endObject();
    for (int tid = kTrackCpu; tid <= kTrackWbWrites; ++tid) {
        json.beginObject();
        json.field("name", "thread_name");
        json.field("ph", "M");
        json.field("pid", 0);
        json.field("tid", tid);
        json.key("args").beginObject();
        json.field("name", trackName(tid));
        json.endObject();
        json.endObject();
    }

    if (log != nullptr)
        writeLogEvents(json, *log);
    if (timeline != nullptr)
        writeTimelineCounters(json, *timeline);
    json.endArray();

    json.field("displayTimeUnit", "ms");
    json.key("otherData").beginObject();
    json.field("schema", "wbsim-trace-event-v1");
    json.field("one_microsecond_is", "one simulated cycle");
    if (log != nullptr) {
        json.field("events_recorded", log->recorded());
        json.field("events_dropped", log->dropped());
    }
    if (timeline != nullptr) {
        json.field("timeline_epoch_cycles",
                   static_cast<std::uint64_t>(
                       timeline->epochCycles()));
        json.field("timeline_origin",
                   static_cast<std::uint64_t>(timeline->origin()));
    }
    json.endObject();
    writeProvenance(json, provenance);
    json.endObject();
    os << "\n";
}

} // namespace wbsim::obs
