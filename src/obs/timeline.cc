#include "obs/timeline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wbsim::obs
{

const char *
channelName(Channel channel)
{
    switch (channel) {
      case Channel::BufferFullStall:
        return "buffer_full_stall";
      case Channel::ReadAccessStall:
        return "read_access_stall";
      case Channel::HazardStall:
        return "hazard_stall";
      case Channel::IFetchStall:
        return "ifetch_stall";
      case Channel::BarrierStall:
        return "barrier_stall";
      case Channel::WbWords:
        return "wb_words";
      case Channel::Stores:
        return "stores";
      case Channel::OccupancySum:
        return "occupancy_sum";
      case Channel::BusBusy:
        return "bus_busy";
    }
    return "?";
}

Timeline::Timeline(Cycle epoch_cycles, std::size_t max_epochs)
    : epoch_cycles_(epoch_cycles), max_epochs_(max_epochs),
      bins_(max_epochs * kChannels, 0)
{
    wbsim_assert(epoch_cycles > 0, "timeline epochs need a width");
    wbsim_assert(max_epochs >= 2, "timeline needs at least 2 epochs");
}

std::size_t
Timeline::epochOf(Cycle cycle)
{
    if (!started_) {
        started_ = true;
        origin_ = cycle;
    }
    // Events arrive in nondecreasing cycle order from one simulator,
    // but a shared timeline may see slightly older cycles from the
    // buffer's retirement replay; clamp those into epoch 0 territory.
    Cycle offset = cycle >= origin_ ? cycle - origin_ : 0;
    std::size_t epoch =
        static_cast<std::size_t>(offset / epoch_cycles_);
    while (epoch >= max_epochs_) {
        fold();
        epoch = static_cast<std::size_t>(offset / epoch_cycles_);
    }
    used_ = std::max(used_, epoch + 1);
    return epoch;
}

void
Timeline::fold()
{
    for (std::size_t e = 0; 2 * e + 1 < max_epochs_; ++e) {
        for (std::size_t c = 0; c < kChannels; ++c) {
            bins_[e * kChannels + c] =
                bins_[2 * e * kChannels + c]
                + bins_[(2 * e + 1) * kChannels + c];
        }
    }
    // An odd tail bin carries over unpaired. It must *replace* its
    // destination: slot last/2 still holds the stale old-epoch value
    // that the pairwise loop above already folded forward, so adding
    // into it would count that epoch twice.
    if (max_epochs_ % 2 == 1) {
        std::size_t last = max_epochs_ - 1;
        for (std::size_t c = 0; c < kChannels; ++c)
            bins_[(last / 2) * kChannels + c] =
                bins_[last * kChannels + c];
    }
    std::size_t live = (max_epochs_ + 1) / 2;
    std::fill(bins_.begin()
                  + static_cast<std::ptrdiff_t>(live * kChannels),
              bins_.end(), 0);
    epoch_cycles_ *= 2;
    used_ = (used_ + 1) / 2;
}

Count
Timeline::value(std::size_t epoch, Channel channel) const
{
    wbsim_assert(epoch < used_, "timeline epoch out of range");
    return bins_[epoch * kChannels + static_cast<std::size_t>(channel)];
}

Count
Timeline::total(Channel channel) const
{
    Count sum = 0;
    for (std::size_t e = 0; e < used_; ++e)
        sum += bins_[e * kChannels + static_cast<std::size_t>(channel)];
    return sum;
}

void
Timeline::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    started_ = false;
    origin_ = 0;
    used_ = 0;
}

} // namespace wbsim::obs
