#include "obs/json.hh"

#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace wbsim::obs
{

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
}

void
JsonWriter::indentLine()
{
    if (indent_ <= 0)
        return;
    os_ << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i)
        for (int s = 0; s < indent_; ++s)
            os_ << ' ';
}

void
JsonWriter::separate()
{
    if (counts_.empty())
        return; // root value
    if (counts_.back() > 0)
        os_ << ",";
    ++counts_.back();
    indentLine();
}

JsonWriter &
JsonWriter::beginObject()
{
    if (after_key_)
        after_key_ = false;
    else
        separate();
    os_ << "{";
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    wbsim_assert(!counts_.empty(), "endObject with nothing open");
    bool had_members = counts_.back() > 0;
    counts_.pop_back();
    if (had_members)
        indentLine();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    if (after_key_)
        after_key_ = false;
    else
        separate();
    os_ << "[";
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    wbsim_assert(!counts_.empty(), "endArray with nothing open");
    bool had_members = counts_.back() > 0;
    counts_.pop_back();
    if (had_members)
        indentLine();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    wbsim_assert(!after_key_, "two keys in a row");
    separate();
    os_ << '"' << jsonEscape(name) << "\": ";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    if (after_key_)
        after_key_ = false;
    else
        separate();
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    if (after_key_)
        after_key_ = false;
    else
        separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    if (after_key_)
        after_key_ = false;
    else
        separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (after_key_)
        after_key_ = false;
    else
        separate();
    // max_digits10 guarantees the textual form re-parses to the
    // identical double (the round-trip tests rely on this).
    std::ostringstream tmp;
    tmp << std::setprecision(std::numeric_limits<double>::max_digits10)
        << v;
    os_ << tmp.str();
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    if (after_key_)
        after_key_ = false;
    else
        separate();
    os_ << (v ? "true" : "false");
    return *this;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
JsonValue::boolean() const
{
    wbsim_assert(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::number() const
{
    wbsim_assert(kind_ == Kind::Number, "JSON value is not a number");
    return num_;
}

std::uint64_t
JsonValue::uint() const
{
    wbsim_assert(kind_ == Kind::Number && integral_,
                 "JSON value is not an integral number");
    return uint_;
}

const std::string &
JsonValue::string() const
{
    wbsim_assert(kind_ == Kind::String, "JSON value is not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    wbsim_assert(kind_ == Kind::Array, "JSON value is not an array");
    return arr_;
}

const std::map<std::string, JsonValue> &
JsonValue::object() const
{
    wbsim_assert(kind_ == Kind::Object, "JSON value is not an object");
    return obj_;
}

const JsonValue &
JsonValue::at(const std::string &name) const
{
    wbsim_assert(kind_ == Kind::Object, "JSON value is not an object");
    auto it = obj_.find(name);
    if (it == obj_.end())
        wbsim_fatal("JSON object has no member '", name, "'");
    return it->second;
}

bool
JsonValue::has(const std::string &name) const
{
    return kind_ == Kind::Object && obj_.count(name) > 0;
}

/** Recursive-descent parser over an in-memory document. Malformed
 *  input raises Malformed; the two public entry points translate it
 *  into fatal() (trusted artifacts) or an error string (untrusted
 *  wire payloads). */
class JsonParser
{
  public:
    /** Parse failure carrying the diagnostic. */
    struct Malformed
    {
        std::string message;
    };

    explicit JsonParser(const std::string &text)
        : text_(text)
    {
    }

    JsonValue
    document()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing garbage after JSON document at byte ",
                 pos_);
        return v;
    }

  private:
    template <typename... Args>
    [[noreturn]] void
    fail(Args &&...args)
    {
        throw Malformed{
            detail::concat(std::forward<Args>(args)...)};
    }

    /** Recursion guard: a few KB of '[' must not overflow the
     *  connection thread's stack. */
    struct DepthGuard
    {
        explicit DepthGuard(JsonParser &p) : parser(p)
        {
            if (++parser.depth_ > kMaxDepth)
                throw Malformed{"JSON nesting deeper than 64 levels"};
        }
        ~DepthGuard() { --parser.depth_; }
        JsonParser &parser;
    };
    static constexpr int kMaxDepth = 64;
    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of JSON document");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("expected '", std::string(1, c), "' at byte ", pos_,
                 " of JSON document");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        DepthGuard depth(*this);
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue v;
            v.kind_ = JsonValue::Kind::String;
            v.str_ = parseString();
            return v;
          }
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            literal("null");
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    void
    literal(const char *word)
    {
        skipSpace();
        for (const char *p = word; *p; ++p, ++pos_)
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail("malformed JSON literal at byte ", pos_);
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        if (peek() == 't') {
            literal("true");
            v.bool_ = true;
        } else {
            literal("false");
            v.bool_ = false;
        }
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape in JSON string");
                unsigned code = static_cast<unsigned>(std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                // Exporter only emits \u for control characters.
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("unsupported JSON escape '\\",
                     std::string(1, e), "'");
            }
        }
        expect('"');
        return out;
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        std::size_t start = pos_;
        bool integral = true;
        if (pos_ < text_.size()
            && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-'
                       || c == '+') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("malformed JSON number at byte ", pos_);
        std::string text = text_.substr(start, pos_ - start);
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.num_ = std::strtod(text.c_str(), nullptr);
        v.integral_ = integral && text[0] != '-';
        if (v.integral_)
            v.uint_ = std::strtoull(text.c_str(), nullptr, 10);
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        if (consume(']'))
            return v;
        for (;;) {
            v.arr_.push_back(parseValue());
            if (consume(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        if (consume('}'))
            return v;
        for (;;) {
            std::string name = parseString();
            expect(':');
            v.obj_.emplace(std::move(name), parseValue());
            if (consume('}'))
                return v;
            expect(',');
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    try {
        return JsonParser(text).document();
    } catch (const JsonParser::Malformed &err) {
        wbsim_fatal(err.message);
    }
}

bool
JsonValue::tryParse(const std::string &text, JsonValue &out,
                    std::string &error)
{
    try {
        out = JsonParser(text).document();
        return true;
    } catch (const JsonParser::Malformed &err) {
        error = err.message;
        return false;
    }
}

} // namespace wbsim::obs
