#include "obs/export.hh"

#include <iomanip>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace wbsim::obs
{

namespace
{

/** CSV-safe double: max_digits10 so values re-parse exactly. */
std::string
csvDouble(double v)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << v;
    return os.str();
}

/** Quote a CSV field only when it needs it. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Provenance::defaultBuildFlags()
{
    std::string flags;
#if defined(__VERSION__)
    flags += __VERSION__;
#else
    flags += "unknown-compiler";
#endif
#ifdef NDEBUG
    flags += " release";
#else
    flags += " debug-assertions";
#endif
    return flags;
}

void
writeProvenance(JsonWriter &json, const Provenance &provenance)
{
    json.key("provenance").beginObject();
    json.field("tool", "wbsim");
    json.field("machine_fingerprint", provenance.machineFingerprint);
    json.field("machine", provenance.machine);
    json.field("seed", provenance.seed);
    json.field("instructions", provenance.instructions);
    json.field("warmup", provenance.warmup);
    json.field("build_flags", provenance.buildFlags);
    json.endObject();
}

void
writeSimResultsJson(std::ostream &os, const SimResults &r,
                    const Provenance &provenance)
{
    JsonWriter json(os);
    writeSimResultsObject(json, r, provenance);
    os << "\n";
}

void
writeSimResultsObject(JsonWriter &json, const SimResults &r,
                      const Provenance &provenance)
{
    json.beginObject();
    json.field("schema", "wbsim-sim-results-v1");
    writeProvenance(json, provenance);
    json.field("workload", r.workload);
    json.field("machine", r.machine);
    json.field("instructions", r.instructions);
    json.field("cycles", r.cycles);
    json.field("loads", r.loads);
    json.field("stores", r.stores);

    json.key("stalls").beginObject();
    json.key("buffer_full").beginObject();
    json.field("cycles", r.stalls.bufferFullCycles);
    json.field("events", r.stalls.bufferFullEvents);
    json.field("max_episode", r.stalls.bufferFullMaxEpisode);
    json.endObject();
    json.key("read_access").beginObject();
    json.field("cycles", r.stalls.l2ReadAccessCycles);
    json.field("events", r.stalls.l2ReadAccessEvents);
    json.field("max_episode", r.stalls.l2ReadAccessMaxEpisode);
    json.endObject();
    json.key("load_hazard").beginObject();
    json.field("cycles", r.stalls.loadHazardCycles);
    json.field("events", r.stalls.loadHazardEvents);
    json.field("max_episode", r.stalls.loadHazardMaxEpisode);
    json.endObject();
    // Derived percentages, so the artifact is plottable without
    // recomputation; parse re-derives and cross-checks them.
    json.key("pct").beginObject();
    json.field("buffer_full", r.pctBufferFull());
    json.field("read_access", r.pctL2ReadAccess());
    json.field("load_hazard", r.pctLoadHazard());
    json.field("total", r.pctTotalStalls());
    json.endObject();
    // Burstiness summary: how clustered the stalls were, not just
    // how many cycles they cost.
    json.key("tail").beginObject();
    json.field("episodes_per_10k", r.stallEpisodesPer10k());
    json.field("max_episode", r.maxStallEpisode());
    json.endObject();
    json.endObject();

    json.key("l1").beginObject();
    json.field("load_hits", r.l1LoadHits);
    json.field("load_misses", r.l1LoadMisses);
    json.field("store_hits", r.l1StoreHits);
    json.field("store_misses", r.l1StoreMisses);
    json.field("load_hit_rate", r.l1LoadHitRate());
    json.endObject();

    json.key("wb").beginObject();
    json.field("merges", r.wbMerges);
    json.field("allocations", r.wbAllocations);
    json.field("retirements", r.wbRetirements);
    json.field("flushes", r.wbFlushes);
    json.field("hazards", r.wbHazards);
    json.field("served_loads", r.wbServedLoads);
    json.field("words_written", r.wbWordsWritten);
    json.field("entries_written", r.wbEntriesWritten);
    json.field("mean_occupancy", r.wbMeanOccupancy);
    json.field("merge_rate", r.wbMergeRate());
    json.endObject();

    json.key("l2").beginObject();
    json.field("read_hits", r.l2ReadHits);
    json.field("read_misses", r.l2ReadMisses);
    json.field("write_hits", r.l2WriteHits);
    json.field("write_misses", r.l2WriteMisses);
    json.field("read_hit_rate", r.l2ReadHitRate());
    json.endObject();

    json.key("mem").beginObject();
    json.field("reads", r.memReads);
    json.field("write_backs", r.memWriteBacks);
    json.endObject();

    json.key("ifetch").beginObject();
    json.field("misses", r.ifetchMisses);
    json.field("l2_stall_cycles", r.l2IFetchStallCycles);
    json.endObject();

    json.key("barrier").beginObject();
    json.field("count", r.barriers);
    json.field("stall_cycles", r.barrierStallCycles);
    json.endObject();

    json.key("store_fetch").beginObject();
    json.field("count", r.storeFetches);
    json.field("cycles", r.storeFetchCycles);
    json.endObject();

    json.endObject();
}

SimResults
parseSimResultsJson(const std::string &text)
{
    return simResultsFromJson(JsonValue::parse(text));
}

SimResults
simResultsFromJson(const JsonValue &doc)
{
    wbsim_assert(doc.at("schema").string() == "wbsim-sim-results-v1",
                 "not a wbsim-sim-results-v1 document");
    SimResults r;
    r.workload = doc.at("workload").string();
    r.machine = doc.at("machine").string();
    r.instructions = doc.at("instructions").uint();
    r.cycles = doc.at("cycles").uint();
    r.loads = doc.at("loads").uint();
    r.stores = doc.at("stores").uint();

    const JsonValue &stalls = doc.at("stalls");
    r.stalls.bufferFullCycles =
        stalls.at("buffer_full").at("cycles").uint();
    r.stalls.bufferFullEvents =
        stalls.at("buffer_full").at("events").uint();
    r.stalls.l2ReadAccessCycles =
        stalls.at("read_access").at("cycles").uint();
    r.stalls.l2ReadAccessEvents =
        stalls.at("read_access").at("events").uint();
    r.stalls.loadHazardCycles =
        stalls.at("load_hazard").at("cycles").uint();
    r.stalls.loadHazardEvents =
        stalls.at("load_hazard").at("events").uint();
    r.stalls.bufferFullMaxEpisode =
        stalls.at("buffer_full").at("max_episode").uint();
    r.stalls.l2ReadAccessMaxEpisode =
        stalls.at("read_access").at("max_episode").uint();
    r.stalls.loadHazardMaxEpisode =
        stalls.at("load_hazard").at("max_episode").uint();

    const JsonValue &l1 = doc.at("l1");
    r.l1LoadHits = l1.at("load_hits").uint();
    r.l1LoadMisses = l1.at("load_misses").uint();
    r.l1StoreHits = l1.at("store_hits").uint();
    r.l1StoreMisses = l1.at("store_misses").uint();

    const JsonValue &wb = doc.at("wb");
    r.wbMerges = wb.at("merges").uint();
    r.wbAllocations = wb.at("allocations").uint();
    r.wbRetirements = wb.at("retirements").uint();
    r.wbFlushes = wb.at("flushes").uint();
    r.wbHazards = wb.at("hazards").uint();
    r.wbServedLoads = wb.at("served_loads").uint();
    r.wbWordsWritten = wb.at("words_written").uint();
    r.wbEntriesWritten = wb.at("entries_written").uint();
    r.wbMeanOccupancy = wb.at("mean_occupancy").number();

    const JsonValue &l2 = doc.at("l2");
    r.l2ReadHits = l2.at("read_hits").uint();
    r.l2ReadMisses = l2.at("read_misses").uint();
    r.l2WriteHits = l2.at("write_hits").uint();
    r.l2WriteMisses = l2.at("write_misses").uint();

    r.memReads = doc.at("mem").at("reads").uint();
    r.memWriteBacks = doc.at("mem").at("write_backs").uint();
    r.ifetchMisses = doc.at("ifetch").at("misses").uint();
    r.l2IFetchStallCycles =
        doc.at("ifetch").at("l2_stall_cycles").uint();
    r.barriers = doc.at("barrier").at("count").uint();
    r.barrierStallCycles = doc.at("barrier").at("stall_cycles").uint();
    r.storeFetches = doc.at("store_fetch").at("count").uint();
    r.storeFetchCycles = doc.at("store_fetch").at("cycles").uint();
    return r;
}

std::string
simResultsCsvHeader()
{
    return "workload,machine,instructions,cycles,loads,stores,"
           "buffer_full_cycles,buffer_full_events,"
           "read_access_cycles,read_access_events,"
           "load_hazard_cycles,load_hazard_events,"
           "buffer_full_max_episode,read_access_max_episode,"
           "load_hazard_max_episode,"
           "pct_buffer_full,pct_read_access,pct_load_hazard,pct_total,"
           "episodes_per_10k,max_episode,"
           "l1_load_hits,l1_load_misses,l1_store_hits,l1_store_misses,"
           "wb_merges,wb_allocations,wb_retirements,wb_flushes,"
           "wb_hazards,wb_served_loads,wb_words_written,"
           "wb_entries_written,wb_mean_occupancy,"
           "l2_read_hits,l2_read_misses,l2_write_hits,l2_write_misses,"
           "mem_reads,mem_write_backs,"
           "ifetch_misses,ifetch_l2_stall_cycles,"
           "barriers,barrier_stall_cycles,"
           "store_fetches,store_fetch_cycles";
}

void
writeSimResultsCsvRow(std::ostream &os, const SimResults &r)
{
    os << csvField(r.workload) << ',' << csvField(r.machine) << ','
       << r.instructions << ',' << r.cycles << ',' << r.loads << ','
       << r.stores << ',' << r.stalls.bufferFullCycles << ','
       << r.stalls.bufferFullEvents << ','
       << r.stalls.l2ReadAccessCycles << ','
       << r.stalls.l2ReadAccessEvents << ','
       << r.stalls.loadHazardCycles << ','
       << r.stalls.loadHazardEvents << ','
       << r.stalls.bufferFullMaxEpisode << ','
       << r.stalls.l2ReadAccessMaxEpisode << ','
       << r.stalls.loadHazardMaxEpisode << ','
       << csvDouble(r.pctBufferFull()) << ','
       << csvDouble(r.pctL2ReadAccess()) << ','
       << csvDouble(r.pctLoadHazard()) << ','
       << csvDouble(r.pctTotalStalls()) << ','
       << csvDouble(r.stallEpisodesPer10k()) << ','
       << r.maxStallEpisode() << ',' << r.l1LoadHits << ','
       << r.l1LoadMisses << ',' << r.l1StoreHits << ','
       << r.l1StoreMisses << ',' << r.wbMerges << ','
       << r.wbAllocations << ',' << r.wbRetirements << ','
       << r.wbFlushes << ',' << r.wbHazards << ',' << r.wbServedLoads
       << ',' << r.wbWordsWritten << ',' << r.wbEntriesWritten << ','
       << csvDouble(r.wbMeanOccupancy) << ',' << r.l2ReadHits << ','
       << r.l2ReadMisses << ',' << r.l2WriteHits << ','
       << r.l2WriteMisses << ',' << r.memReads << ','
       << r.memWriteBacks << ',' << r.ifetchMisses << ','
       << r.l2IFetchStallCycles << ',' << r.barriers << ','
       << r.barrierStallCycles << ',' << r.storeFetches << ','
       << r.storeFetchCycles << "\n";
}

void
writeSimResultsCsv(std::ostream &os,
                   const std::vector<SimResults> &runs)
{
    os << simResultsCsvHeader() << "\n";
    for (const SimResults &r : runs)
        writeSimResultsCsvRow(os, r);
}

void
writeGridJson(std::ostream &os, const std::string &id,
              const std::string &title,
              const std::vector<std::string> &benchmarks,
              const std::vector<std::string> &variants,
              const std::vector<std::vector<SimResults>> &results,
              const Provenance &provenance)
{
    wbsim_assert(results.size() == benchmarks.size(),
                 "grid rows must match the benchmark labels");
    JsonWriter json(os);
    json.beginObject();
    json.field("schema", "wbsim-experiment-grid-v1");
    json.field("id", id);
    json.field("title", title);
    writeProvenance(json, provenance);

    json.key("benchmarks").beginArray();
    for (const std::string &b : benchmarks)
        json.value(b);
    json.endArray();
    json.key("variants").beginArray();
    for (const std::string &v : variants)
        json.value(v);
    json.endArray();

    json.key("cells").beginArray();
    for (std::size_t b = 0; b < results.size(); ++b) {
        wbsim_assert(results[b].size() == variants.size(),
                     "grid columns must match the variant labels");
        for (std::size_t v = 0; v < results[b].size(); ++v) {
            const SimResults &r = results[b][v];
            json.beginObject();
            json.field("benchmark", benchmarks[b]);
            json.field("variant", variants[v]);
            json.field("instructions", r.instructions);
            json.field("cycles", r.cycles);
            json.field("pct_buffer_full", r.pctBufferFull());
            json.field("pct_read_access", r.pctL2ReadAccess());
            json.field("pct_load_hazard", r.pctLoadHazard());
            json.field("pct_total", r.pctTotalStalls());
            json.field("l1_load_hit_rate", r.l1LoadHitRate());
            json.field("wb_merge_rate", r.wbMergeRate());
            json.field("wb_mean_occupancy", r.wbMeanOccupancy);
            json.field("episodes_per_10k", r.stallEpisodesPer10k());
            json.field("max_stall_episode", r.maxStallEpisode());
            json.endObject();
        }
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

void
writeGridCsv(std::ostream &os,
             const std::vector<std::string> &benchmarks,
             const std::vector<std::string> &variants,
             const std::vector<std::vector<SimResults>> &results)
{
    wbsim_assert(results.size() == benchmarks.size(),
                 "grid rows must match the benchmark labels");
    os << "benchmark,variant," << simResultsCsvHeader() << "\n";
    for (std::size_t b = 0; b < results.size(); ++b) {
        wbsim_assert(results[b].size() == variants.size(),
                     "grid columns must match the variant labels");
        for (std::size_t v = 0; v < results[b].size(); ++v) {
            os << csvField(benchmarks[b]) << ','
               << csvField(variants[v]) << ',';
            writeSimResultsCsvRow(os, results[b][v]);
        }
    }
}

void
writeMetricsJson(std::ostream &os, const MetricsRegistry &registry,
                 const Provenance &provenance)
{
    JsonWriter json(os);
    json.beginObject();
    json.field("schema", "wbsim-metrics-v1");
    writeProvenance(json, provenance);
    writeMetricsArray(json, registry);
    json.endObject();
    os << "\n";
}

void
writeMetricsArray(JsonWriter &json, const MetricsRegistry &registry)
{
    json.key("metrics").beginArray();
    for (std::size_t i = 0; i < registry.size(); ++i) {
        json.beginObject();
        json.field("name", registry.name(i));
        json.field("kind", metricKindName(registry.kind(i)));
        switch (registry.kind(i)) {
          case MetricKind::Counter:
            json.field("value", registry.counterValue(i));
            break;
          case MetricKind::Gauge:
            json.field("value", registry.gaugeValue(i));
            break;
          case MetricKind::Histogram: {
            const stats::Histogram &h = registry.histogramValue(i);
            json.field("n", h.samples());
            json.field("mean", h.mean());
            json.field("min", h.minValue());
            json.field("max", h.maxValue());
            json.field("p50", h.quantile(0.50));
            json.field("p95", h.quantile(0.95));
            // Tail quantiles carry an honesty flag: when the rank
            // lands in the overflow bucket the value is only a lower
            // bound clamped to the observed maximum.
            stats::Quantile p99 = h.quantileWithOverflow(0.99);
            stats::Quantile p999 = h.quantileWithOverflow(0.999);
            json.field("p99", p99.value);
            json.field("p99_overflowed", p99.overflowed);
            json.field("p999", p999.value);
            json.field("p999_overflowed", p999.overflowed);
            json.field("overflow_count", h.overflowCount());
            json.field("bucket_width", h.bucketWidth());
            json.key("buckets").beginArray();
            for (std::size_t b = 0; b <= h.buckets(); ++b)
                json.value(h.bucket(b));
            json.endArray();
            break;
          }
        }
        json.endObject();
    }
    json.endArray();
}

void
writeMetricsCsv(std::ostream &os, const MetricsRegistry &registry)
{
    os << "name,kind,n,value,mean,min,max,p50,p95,p99,p999,"
          "tail_overflowed\n";
    for (std::size_t i = 0; i < registry.size(); ++i) {
        os << csvField(registry.name(i)) << ','
           << metricKindName(registry.kind(i)) << ',';
        switch (registry.kind(i)) {
          case MetricKind::Counter:
            os << 1 << ',' << registry.counterValue(i)
               << ",,,,,,,,\n";
            break;
          case MetricKind::Gauge:
            os << 1 << ',' << registry.gaugeValue(i) << ",,,,,,,,\n";
            break;
          case MetricKind::Histogram: {
            const stats::Histogram &h = registry.histogramValue(i);
            stats::Quantile p99 = h.quantileWithOverflow(0.99);
            stats::Quantile p999 = h.quantileWithOverflow(0.999);
            os << h.samples() << ",," << csvDouble(h.mean()) << ','
               << h.minValue() << ',' << h.maxValue() << ','
               << csvDouble(h.quantile(0.50)) << ','
               << csvDouble(h.quantile(0.95)) << ','
               << csvDouble(p99.value) << ','
               << csvDouble(p999.value) << ','
               << (p99.overflowed || p999.overflowed ? 1 : 0) << "\n";
            break;
          }
        }
    }
}

} // namespace wbsim::obs
