/**
 * @file
 * ObsSink: the bundle of observability sinks a caller attaches to a
 * Simulator (and, through harness RunnerOptions, to grid runs).
 *
 * Every member is optional; a default-constructed sink attaches
 * nothing and the instrumented code paths stay no-ops. The struct
 * holds raw non-owning pointers so it can be passed by value and
 * embedded in options structs; the caller owns the sinks and must
 * keep them alive for the duration of the run.
 */

#ifndef WBSIM_OBS_HOOKS_HH
#define WBSIM_OBS_HOOKS_HH

namespace wbsim
{
class EventLog;
}

namespace wbsim::obs
{

class MetricsRegistry;
class Timeline;

/** Optional observability sinks for one run. */
struct ObsSink
{
    /** Named counters/gauges/histograms (occupancy, stall-duration
     *  distributions, retirement bursts). */
    MetricsRegistry *metrics = nullptr;

    /** Stall-density series over cycle epochs. */
    Timeline *timeline = nullptr;

    /** Debug ring of recent events (feeds the trace_event export). */
    EventLog *eventLog = nullptr;

    bool
    attached() const
    {
        return metrics != nullptr || timeline != nullptr
            || eventLog != nullptr;
    }
};

} // namespace wbsim::obs

#endif // WBSIM_OBS_HOOKS_HH
