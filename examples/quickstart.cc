/**
 * @file
 * Quickstart: simulate one SPEC92 workload model on the paper's
 * baseline machine and on the paper's recommended configuration
 * (12-deep, retire-at-8, read-from-WB), and compare the three
 * write-buffer-induced stall categories.
 *
 * Usage: quickstart [--benchmark=li] [--instructions=1000000]
 *                   [--json=FILE] [--trace-out=FILE]
 */

#include <fstream>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/report.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "obs/trace_event.hh"
#include "sim/event_log.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workloads/spec92.hh"

using namespace wbsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("benchmark", "SPEC92 model to run", "li");
    options.declare("instructions", "instructions to simulate",
                    "1000000");
    options.declare("seed", "workload seed", "1");
    options.declare("json", "write the recommended run's SimResults "
                    "as JSON to FILE ('-' for stdout)");
    options.declare("trace-out", "write a Chrome trace_event JSON of "
                    "the recommended run to FILE ('-' for stdout)");
    options.parse(argc, argv);

    const std::string benchmark = options.get("benchmark");
    const Count instructions = options.getUint("instructions");
    const std::uint64_t seed = options.getUint("seed");
    const Count warmup = instructions / 2;

    // The paper's baseline: 4-deep, retire-at-2, flush-full
    // (Table 2), with an 8K write-through L1 and a perfect 6-cycle
    // L2 (Table 1).
    MachineConfig baseline = figures::baselineMachine();

    // The paper's §3.5 recommendation: deep buffer, lazy retirement
    // with 4 entries of headroom, loads served straight from the
    // buffer.
    MachineConfig recommended = baseline;
    recommended.writeBuffer.depth = 12;
    recommended.writeBuffer.highWaterMark = 8;
    recommended.writeBuffer.hazardPolicy = LoadHazardPolicy::ReadFromWB;

    BenchmarkProfile profile = spec92::profile(benchmark);
    EventLog log(1 << 16);
    obs::Timeline timeline;
    obs::MetricsRegistry metrics;
    obs::ObsSink sink{&metrics, &timeline, &log};
    SimResults base =
        runOne(profile, baseline, instructions, seed, warmup);
    SimResults best = runOne(profile, recommended, instructions, seed,
                             warmup, sink);

    std::cout << "workload: " << benchmark << " ("
              << formatPercent(100 * profile.pctLoads, 1) << "% loads, "
              << formatPercent(100 * profile.pctStores, 1)
              << "% stores)\n\n";
    std::cout << summarizeRun(base) << "\n";
    std::cout << summarizeRun(best) << "\n\n";

    TextTable table;
    table.setHeader({"metric", "baseline", "recommended"});
    auto row = [&](const std::string &name, double a, double b,
                   int decimals = 2) {
        table.addRow({name, formatDouble(a, decimals),
                      formatDouble(b, decimals)});
    };
    row("L2-read-access stall %", base.pctL2ReadAccess(),
        best.pctL2ReadAccess());
    row("buffer-full stall %", base.pctBufferFull(),
        best.pctBufferFull());
    row("load-hazard stall %", base.pctLoadHazard(),
        best.pctLoadHazard());
    row("total WB stall %", base.pctTotalStalls(),
        best.pctTotalStalls());
    row("L1 load hit %", 100 * base.l1LoadHitRate(),
        100 * best.l1LoadHitRate());
    row("WB merge %", 100 * base.wbMergeRate(),
        100 * best.wbMergeRate());
    row("words per L2 write", double(base.wbWordsWritten)
            / double(base.wbEntriesWritten),
        double(best.wbWordsWritten) / double(best.wbEntriesWritten));
    row("loads served from WB", double(base.wbServedLoads),
        double(best.wbServedLoads), 0);
    table.render(std::cout);

    double speedup = double(base.cycles) / double(best.cycles);
    std::cout << "\nspeedup from the recommended write buffer: "
              << formatDouble(speedup, 4) << "x\n";

    obs::Provenance provenance;
    provenance.machineFingerprint = recommended.stateFingerprint();
    provenance.machine = recommended.describe();
    provenance.seed = seed;
    provenance.instructions = instructions;
    provenance.warmup = warmup;
    auto emit = [](const std::string &path, auto &&fn) {
        if (path == "-") {
            fn(std::cout);
            return;
        }
        std::ofstream os(path);
        if (!os)
            wbsim_fatal("cannot open '", path, "' for writing");
        fn(os);
        std::cerr << "wrote " << path << "\n";
    };
    if (options.has("json")) {
        emit(options.get("json"), [&](std::ostream &os) {
            obs::writeSimResultsJson(os, best, provenance);
        });
    }
    if (options.has("trace-out")) {
        emit(options.get("trace-out"), [&](std::ostream &os) {
            obs::writeTraceEventJson(os, &log, &timeline, provenance);
        });
    }
    return 0;
}
