/**
 * @file
 * Machine showdown: the real write buffers the paper keeps
 * referencing - Alpha 21064, Alpha 21164, an UltraSPARC-style
 * arbiter - against the paper's recommended configuration, across
 * all 17 benchmark models.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/machines.hh"
#include "harness/report.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "workloads/spec92.hh"

using namespace wbsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("instructions", "instructions per run", "500000");
    options.declare("seed", "workload seed", "1");
    options.parse(argc, argv);

    const Count instructions = options.getUint("instructions");
    const Count warmup = instructions / 2;
    const std::uint64_t seed = options.getUint("seed");

    auto presets = machines::allMachines();
    auto profiles = spec92::allProfiles();

    std::vector<std::vector<SimResults>> results(
        profiles.size(), std::vector<SimResults>(presets.size()));
    parallelFor(profiles.size() * presets.size(), defaultThreads(),
                [&](std::size_t index) {
                    std::size_t b = index / presets.size();
                    std::size_t m = index % presets.size();
                    results[b][m] =
                        runOne(profiles[b], presets[m].machine,
                               instructions, seed, warmup);
                });

    std::cout << "total write-buffer stall % by machine\n\n";
    TextTable table;
    std::vector<std::string> header = {"benchmark"};
    for (const auto &preset : presets)
        header.push_back(preset.name);
    table.setHeader(header);

    std::vector<double> totals(presets.size(), 0.0);
    for (std::size_t b = 0; b < profiles.size(); ++b) {
        std::vector<std::string> row = {profiles[b].name};
        for (std::size_t m = 0; m < presets.size(); ++m) {
            row.push_back(
                formatPercent(results[b][m].pctTotalStalls()));
            totals[m] += results[b][m].pctTotalStalls();
        }
        table.addRow(std::move(row));
    }
    table.addSeparator();
    std::vector<std::string> mean_row = {"MEAN"};
    for (double total : totals)
        mean_row.push_back(
            formatPercent(total / double(profiles.size())));
    table.addRow(std::move(mean_row));
    table.render(std::cout);

    std::cout << "\nmachines:\n";
    for (const auto &preset : presets)
        std::cout << "  " << preset.name << ": "
                  << preset.machine.writeBuffer.describe() << "\n";
    return 0;
}
