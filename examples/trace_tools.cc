/**
 * @file
 * Trace toolchain demo: generate a binary trace file from a workload
 * model, inspect it, and simulate straight from the file - the
 * workflow for substituting real traces (converted ChampSim /
 * Valgrind output) for the synthetic SPEC92 models.
 *
 * Subcommands (first positional argument):
 *   gen  --benchmark=li --out=li.wbt [--instructions=N]
 *   info --in=li.wbt
 *   dump --in=li.wbt [--count=20]
 *   sim  --in=li.wbt [--depth=4] [--retire-at=2]
 *   din2wbt --in=trace.din --out=trace.wbt   (import Dinero traces)
 *   wbt2din --in=trace.wbt --out=trace.din   (export to Dinero)
 */

#include <iostream>

#include "sim/simulator.hh"
#include "harness/figures.hh"
#include "harness/report.hh"
#include "trace/dinero.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "workloads/generator.hh"
#include "workloads/spec92.hh"

using namespace wbsim;

namespace
{

int
doGen(const Options &options)
{
    SyntheticSource source(spec92::profile(options.get("benchmark")),
                           options.getUint("instructions"),
                           options.getUint("seed"));
    Count written = writeTraceFile(options.get("out"), source,
                                   /*with_pcs=*/true);
    std::cout << "wrote " << written << " records to "
              << options.get("out") << "\n";
    return 0;
}

int
doInfo(const Options &options)
{
    TraceFileReader reader(options.get("in"));
    const TraceFileHeader &header = reader.header();
    std::cout << "trace: " << options.get("in") << "\n"
              << "  workload: " << header.name << "\n"
              << "  records:  " << header.count << "\n"
              << "  pcs:      " << (header.hasPcs ? "yes" : "no")
              << "\n";
    Count loads = 0, stores = 0;
    TraceRecord rec;
    while (reader.next(rec)) {
        loads += rec.isLoad();
        stores += rec.isStore();
    }
    std::cout << "  loads:    " << loads << "\n"
              << "  stores:   " << stores << "\n";
    return 0;
}

int
doDump(const Options &options)
{
    TraceFileReader reader(options.get("in"));
    Count limit = options.getUint("count");
    TraceRecord rec;
    for (Count i = 0; i < limit && reader.next(rec); ++i)
        std::cout << i << ": " << toString(rec) << "\n";
    return 0;
}

int
doSim(const Options &options)
{
    MachineConfig machine = figures::baselineMachine();
    machine.writeBuffer.depth =
        static_cast<unsigned>(options.getUint("depth"));
    machine.writeBuffer.highWaterMark =
        static_cast<unsigned>(options.getUint("retire-at"));
    TraceFileReader reader(options.get("in"));
    Simulator simulator(machine);
    SimResults results = simulator.run(reader);
    std::cout << summarizeRun(results) << "\n";
    return 0;
}

int
doDin2Wbt(const Options &options)
{
    DineroReader reader(options.get("in"));
    Count written = writeTraceFile(options.get("out"), reader);
    std::cout << "converted " << written << " din records to "
              << options.get("out") << "\n";
    return 0;
}

int
doWbt2Din(const Options &options)
{
    TraceFileReader reader(options.get("in"));
    Count written = writeDineroFile(options.get("out"), reader);
    std::cout << "converted " << written << " records to din format "
              << options.get("out") << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("benchmark", "workload model for 'gen'", "li");
    options.declare("out", "output trace path", "trace.wbt");
    options.declare("in", "input trace path", "trace.wbt");
    options.declare("instructions", "records to generate", "200000");
    options.declare("count", "records to dump", "20");
    options.declare("depth", "write buffer depth for 'sim'", "4");
    options.declare("retire-at", "high-water mark for 'sim'", "2");
    options.declare("seed", "generator seed", "1");
    options.parse(argc, argv);

    std::string command = options.positionals().empty()
        ? "demo"
        : options.positionals().front();

    if (command == "gen")
        return doGen(options);
    if (command == "info")
        return doInfo(options);
    if (command == "dump")
        return doDump(options);
    if (command == "sim")
        return doSim(options);
    if (command == "din2wbt")
        return doDin2Wbt(options);
    if (command == "wbt2din")
        return doWbt2Din(options);

    if (command == "demo") {
        // No arguments: run the full pipeline on a temp file.
        std::cout << "== demo: gen -> info -> dump -> sim ==\n";
        Options gen = options;
        const char *args[] = {"trace_tools", "--out=/tmp/wbsim_demo.wbt",
                              "--in=/tmp/wbsim_demo.wbt", "--count=8"};
        gen.parse(4, args);
        doGen(gen);
        doInfo(gen);
        doDump(gen);
        return doSim(gen);
    }

    wbsim_fatal("unknown subcommand '", command,
                "' (gen, info, dump, sim, din2wbt, wbt2din)\n",
                options.usage());
}
