/**
 * @file
 * Bring-your-own-workload demo: build a BenchmarkProfile from
 * scratch (a producer/consumer loop with a large shared array and
 * frequent read-after-write traffic - a worst case for load
 * hazards), then compare every load-hazard policy on it.
 *
 * This is the template for modelling a workload the SPEC92
 * catalogue does not cover.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace wbsim;

namespace
{

/** A hazard-heavy producer/consumer workload. */
BenchmarkProfile
producerConsumer()
{
    BenchmarkProfile p;
    p.name = "producer-consumer";
    p.pctLoads = 0.30;
    p.pctStores = 0.20;

    // Loads: half from a hot stack, half re-reading the shared ring.
    BehaviorSpec hot;
    hot.kind = BehaviorKind::Stack;
    hot.region = 2 * 1024;
    hot.weight = 0.5;

    BehaviorSpec ring;
    ring.kind = BehaviorKind::Loop;
    ring.region = 256 * 1024;
    ring.weight = 0.5;

    p.loadBehaviors = {hot, ring};

    // Stores: the producer walks the same ring.
    BehaviorSpec producer = ring;
    producer.weight = 1.0;
    producer.shareWithLoad = 1; // writes the array the loads read
    p.storeBehaviors = {producer};

    // The consumer reads data the producer just wrote: a very high
    // read-after-write rate, so load hazards dominate.
    p.rawFraction = 0.25;
    p.rawDistanceMin = 1;
    p.rawDistanceMax = 4;
    p.storeBurstContinue = 0.5;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("instructions", "instructions per run", "1000000");
    options.declare("seed", "workload seed", "1");
    options.parse(argc, argv);

    const Count instructions = options.getUint("instructions");
    const Count warmup = instructions / 2;
    const std::uint64_t seed = options.getUint("seed");

    BenchmarkProfile profile = producerConsumer();
    profile.validate();

    std::cout << "custom workload: " << profile.name
              << " (25% of loads re-read recent stores)\n\n";

    TextTable table;
    table.setHeader({"hazard policy", "R%", "F%", "L%", "T%",
                     "hazards", "served-from-WB"});
    for (LoadHazardPolicy policy :
         {LoadHazardPolicy::FlushFull, LoadHazardPolicy::FlushPartial,
          LoadHazardPolicy::FlushItemOnly,
          LoadHazardPolicy::ReadFromWB}) {
        MachineConfig machine = figures::baselineMachine();
        machine.writeBuffer.depth = 8;
        machine.writeBuffer.highWaterMark = 4;
        machine.writeBuffer.hazardPolicy = policy;
        SimResults r =
            runOne(profile, machine, instructions, seed, warmup);
        table.addRow({loadHazardPolicyName(policy),
                      formatPercent(r.pctL2ReadAccess()),
                      formatPercent(r.pctBufferFull()),
                      formatPercent(r.pctLoadHazard()),
                      formatPercent(r.pctTotalStalls()),
                      std::to_string(r.wbHazards),
                      std::to_string(r.wbServedLoads)});
    }
    table.render(std::cout);
    std::cout << "\nread-from-WB turns every hazard into a free hit: "
                 "the paper's §3.5 conclusion, amplified.\n";
    return 0;
}
