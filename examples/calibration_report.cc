/**
 * @file
 * Calibration report: runs every SPEC92 model on the paper's
 * baseline machine (and on the real-L2 machines of Table 7) and
 * prints measured-vs-published values for every calibrated quantity.
 *
 * This is the tool used to tune the workload models; the tolerance
 * bands asserted by tests/workloads/calibration_test.cc are checked
 * visually here first.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "workloads/spec92.hh"

using namespace wbsim;

int
main(int argc, char **argv)
{
    Options options;
    options.declare("instructions", "instructions per run", "2000000");
    options.declare("warmup", "warmup instructions", "2000000");
    options.declare("seed", "workload seed", "1");
    options.parse(argc, argv);

    const Count instructions = options.getUint("instructions");
    const Count warmup = options.getUint("warmup");
    const std::uint64_t seed = options.getUint("seed");

    auto profiles = spec92::allProfiles();
    profiles.push_back(spec92::transformedProfile("gmtry"));
    profiles.push_back(spec92::transformedProfile("cholsky"));

    const MachineConfig baseline = figures::baselineMachine();
    MachineConfig real128 = baseline;
    real128.perfectL2 = false;
    real128.l2.sizeBytes = 128 * 1024;
    MachineConfig real512 = real128;
    real512.l2.sizeBytes = 512 * 1024;
    MachineConfig real1m = real128;
    real1m.l2.sizeBytes = 1024 * 1024;
    const std::vector<MachineConfig> machines = {baseline, real128,
                                                 real512, real1m};

    // results[benchmark][machine]
    std::vector<std::vector<SimResults>> results(
        profiles.size(), std::vector<SimResults>(machines.size()));
    parallelFor(profiles.size() * machines.size(), defaultThreads(),
                [&](std::size_t index) {
                    std::size_t b = index / machines.size();
                    std::size_t m = index % machines.size();
                    results[b][m] = runOne(profiles[b], machines[m],
                                           instructions, seed, warmup);
                });

    TextTable table;
    table.setHeader({"benchmark", "ld%", "st%", "L1hit", "(tgt)",
                     "WBhit", "(tgt)", "L2@128K", "(tgt)", "L2@512K",
                     "(tgt)", "L2@1M", "(tgt)", "T-stall%"});
    for (std::size_t b = 0; b < profiles.size(); ++b) {
        const BenchmarkProfile &p = profiles[b];
        const SimResults &base = results[b][0];
        auto pct = [](double v) { return formatPercent(100 * v); };
        table.addRow({
            p.name,
            pct(double(base.loads) / double(base.instructions)),
            pct(double(base.stores) / double(base.instructions)),
            pct(base.l1LoadHitRate()), pct(p.targetL1LoadHit),
            pct(base.wbMergeRate()), pct(p.targetWbMerge),
            pct(results[b][1].l2ReadHitRate()), pct(p.targetL2Hit128K),
            pct(results[b][2].l2ReadHitRate()), pct(p.targetL2Hit512K),
            pct(results[b][3].l2ReadHitRate()), pct(p.targetL2Hit1M),
            formatPercent(base.pctTotalStalls()),
        });
    }
    table.render(std::cout);

    std::cout << "\nBaseline stall breakdown (R/F/L as % of time):\n";
    TextTable stalls;
    stalls.setHeader({"benchmark", "R%", "F%", "L%", "T%", "hazards",
                      "occupancy"});
    for (std::size_t b = 0; b < profiles.size(); ++b) {
        const SimResults &r = results[b][0];
        stalls.addRow({profiles[b].name,
                       formatPercent(r.pctL2ReadAccess()),
                       formatPercent(r.pctBufferFull()),
                       formatPercent(r.pctLoadHazard()),
                       formatPercent(r.pctTotalStalls()),
                       std::to_string(r.wbHazards),
                       formatDouble(r.wbMeanOccupancy, 2)});
    }
    stalls.render(std::cout);
    return 0;
}
