/**
 * @file
 * Design-space explorer: sweep any one write-buffer or cache
 * parameter over a list of values for a chosen benchmark and print
 * the stall breakdown per point - the tool a designer would use to
 * answer "how deep should my buffer be for this workload?".
 *
 * Usage examples:
 *   design_space_explorer --benchmark=fft --sweep=depth \
 *       --values=2,4,6,8,10,12
 *   design_space_explorer --benchmark=li --sweep=retire-at \
 *       --values=2,4,6,8 --depth=12 --hazard=read-from-WB
 *   design_space_explorer --benchmark=tomcatv --sweep=l2-latency \
 *       --values=3,6,10,20
 */

#include <iostream>
#include <sstream>

#include "harness/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/generator.hh"
#include "harness/figures.hh"
#include "util/barchart.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workloads/spec92.hh"

using namespace wbsim;

namespace
{

std::vector<std::uint64_t>
parseValues(const std::string &text)
{
    std::vector<std::uint64_t> values;
    std::stringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ','))
        values.push_back(std::stoull(item));
    if (values.empty())
        wbsim_fatal("--values needs a comma-separated list");
    return values;
}

void
applySweep(MachineConfig &machine, const std::string &knob,
           std::uint64_t value)
{
    if (knob == "depth")
        machine.writeBuffer.depth = static_cast<unsigned>(value);
    else if (knob == "retire-at")
        machine.writeBuffer.highWaterMark =
            static_cast<unsigned>(value);
    else if (knob == "l1-kb")
        machine.l1d.sizeBytes = value * 1024;
    else if (knob == "l2-latency")
        machine.l2Latency = value;
    else if (knob == "l2-kb") {
        machine.perfectL2 = false;
        machine.l2.sizeBytes = value * 1024;
    } else if (knob == "mem-latency") {
        machine.perfectL2 = false;
        machine.memLatency = value;
    } else if (knob == "datapath")
        machine.l2DatapathBytes = static_cast<unsigned>(value);
    else if (knob == "issue-width")
        machine.issueWidth = static_cast<unsigned>(value);
    else
        wbsim_fatal("unknown sweep knob '", knob,
                    "' (depth, retire-at, l1-kb, l2-latency, l2-kb, "
                    "mem-latency, datapath, issue-width)");
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("benchmark", "SPEC92 model", "compress");
    options.declare("sweep", "knob to sweep", "depth");
    options.declare("values", "comma-separated values",
                    "2,4,6,8,10,12");
    options.declare("depth", "fixed buffer depth", "4");
    options.declare("retire-at", "fixed high-water mark", "2");
    options.declare("hazard", "load-hazard policy", "flush-full");
    options.declare("instructions", "instructions per point",
                    "1000000");
    options.declare("seed", "workload seed", "1");
    options.declare("events", "dump the last N debug events of the "
                              "final run (0 = off)", "0");
    options.parse(argc, argv);

    const std::string benchmark = options.get("benchmark");
    const std::string knob = options.get("sweep");
    const Count instructions = options.getUint("instructions");
    const Count warmup = instructions / 2;
    const std::uint64_t seed = options.getUint("seed");

    MachineConfig base = figures::baselineMachine();
    base.writeBuffer.depth =
        static_cast<unsigned>(options.getUint("depth"));
    base.writeBuffer.highWaterMark =
        static_cast<unsigned>(options.getUint("retire-at"));
    base.writeBuffer.hazardPolicy =
        parseLoadHazardPolicy(options.get("hazard"));

    BenchmarkProfile profile = spec92::profile(benchmark);

    std::cout << "sweep of '" << knob << "' for " << benchmark
              << "\n\n";
    TextTable table;
    table.setHeader({knob, "config", "R%", "F%", "L%", "T%", "CPI"});
    BarChart chart({"L2-read-access", "buffer-full", "load-hazard"});
    chart.beginGroup(benchmark);

    for (std::uint64_t value : parseValues(options.get("values"))) {
        MachineConfig machine = base;
        applySweep(machine, knob, value);
        machine.validate();
        SimResults r =
            runOne(profile, machine, instructions, seed, warmup);
        double cpi = double(r.cycles) / double(r.instructions);
        table.addRow({std::to_string(value), machine.describe(),
                      formatPercent(r.pctL2ReadAccess()),
                      formatPercent(r.pctBufferFull()),
                      formatPercent(r.pctLoadHazard()),
                      formatPercent(r.pctTotalStalls()),
                      formatDouble(cpi, 3)});
        chart.addBar({std::to_string(value),
                      {r.pctL2ReadAccess(), r.pctBufferFull(),
                       r.pctLoadHazard()}});
    }
    table.render(std::cout);
    std::cout << "\n";
    chart.render(std::cout);

    if (Count events = options.getUint("events"); events > 0) {
        // Replay the last sweep point with an event log attached and
        // show the tail of the microarchitectural story.
        MachineConfig machine = base;
        auto values = parseValues(options.get("values"));
        applySweep(machine, knob, values.back());
        EventLog log(events);
        Simulator simulator(machine);
        simulator.attachEventLog(&log);
        SyntheticSource source(profile, instructions, seed);
        simulator.run(source);
        std::cout << "\nlast " << log.size() << " events of the "
                  << values.back() << " run:\n";
        log.dump(std::cout);
    }
    return 0;
}
