/**
 * @file
 * Design-space explorer: sweep any one write-buffer or cache
 * parameter over a list of values for a chosen benchmark and print
 * the stall breakdown per point - the tool a designer would use to
 * answer "how deep should my buffer be for this workload?".
 *
 * Usage examples:
 *   design_space_explorer --benchmark=fft --sweep=depth \
 *       --values=2,4,6,8,10,12
 *   design_space_explorer --benchmark=li --sweep=retire-at \
 *       --values=2,4,6,8 --depth=12 --hazard=read-from-WB
 *   design_space_explorer --benchmark=tomcatv --sweep=l2-latency \
 *       --values=3,6,10,20
 *
 * With --server=PORT (or --server=unix:PATH) the whole sweep is
 * shipped to a running wbsim_serve daemon as one batch and the
 * explorer becomes a thin client: no simulation happens in this
 * process, and repeated sweeps come straight out of the daemon's
 * result store.
 */

#include <iostream>
#include <sstream>

#include "harness/experiment.hh"
#include "serve/client.hh"
#include "sim/simulator.hh"
#include "workloads/generator.hh"
#include "harness/figures.hh"
#include "util/barchart.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workloads/spec92.hh"

using namespace wbsim;

namespace
{

std::vector<std::uint64_t>
parseValues(const std::string &text)
{
    std::vector<std::uint64_t> values;
    std::stringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ','))
        values.push_back(std::stoull(item));
    if (values.empty())
        wbsim_fatal("--values needs a comma-separated list");
    return values;
}

void
applySweep(MachineConfig &machine, const std::string &knob,
           std::uint64_t value)
{
    if (knob == "depth")
        machine.writeBuffer.depth = static_cast<unsigned>(value);
    else if (knob == "retire-at")
        machine.writeBuffer.highWaterMark =
            static_cast<unsigned>(value);
    else if (knob == "l1-kb")
        machine.l1d.sizeBytes = value * 1024;
    else if (knob == "l2-latency")
        machine.l2Latency = value;
    else if (knob == "l2-kb") {
        machine.perfectL2 = false;
        machine.l2.sizeBytes = value * 1024;
    } else if (knob == "mem-latency") {
        machine.perfectL2 = false;
        machine.memLatency = value;
    } else if (knob == "datapath")
        machine.l2DatapathBytes = static_cast<unsigned>(value);
    else if (knob == "issue-width")
        machine.issueWidth = static_cast<unsigned>(value);
    else if (knob == "cores")
        machine.cores = static_cast<unsigned>(value);
    else
        wbsim_fatal("unknown sweep knob '", knob,
                    "' (depth, retire-at, l1-kb, l2-latency, l2-kb, "
                    "mem-latency, datapath, issue-width, cores)");
}

/** Run every sweep point through a wbsim_serve daemon as one batch
 *  and decode the served payloads back into SimResults. @p target is
 *  a TCP port number or "unix:PATH". */
std::vector<SimResults>
runOnServer(const std::string &target, const std::string &benchmark,
            const std::vector<MachineConfig> &machines,
            Count instructions, Count warmup, std::uint64_t seed)
{
    serve::ServeClient client;
    std::string error;
    bool connected = false;
    if (target.rfind("unix:", 0) == 0)
        connected = client.connectUnix(target.substr(5), error);
    else
        connected = client.connectTcp(
            std::uint16_t(std::stoul(target)), error);
    if (!connected)
        wbsim_fatal("--server=", target, ": ", error);

    std::vector<serve::CellSpec> cells;
    cells.reserve(machines.size());
    for (const MachineConfig &machine : machines) {
        serve::CellSpec cell;
        cell.benchmark = benchmark;
        cell.seed = seed;
        cell.instructions = instructions;
        cell.warmup = warmup;
        cell.machine = machine;
        cells.push_back(std::move(cell));
    }

    serve::Response response;
    if (!client.sweepWithRetry(cells, /*priority=*/0,
                               /*maxAttempts=*/100, response, error))
        wbsim_fatal("--server sweep failed: ", error);
    if (response.type != serve::ResponseType::Results)
        wbsim_fatal("--server sweep rejected: ", response.error);

    std::vector<SimResults> results;
    results.reserve(response.cells.size());
    for (const serve::CellResult &cell : response.cells) {
        SimResults r;
        if (!serve::ServeClient::cellToResults(cell, r, error))
            wbsim_fatal("--server payload: ", error);
        results.push_back(r);
    }
    return results;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("benchmark", "SPEC92 model", "compress");
    options.declare("sweep", "knob to sweep", "depth");
    options.declare("values", "comma-separated values",
                    "2,4,6,8,10,12");
    options.declare("depth", "fixed buffer depth", "4");
    options.declare("retire-at", "fixed high-water mark", "2");
    options.declare("hazard", "load-hazard policy", "flush-full");
    options.declare("instructions", "instructions per point",
                    "1000000");
    options.declare("seed", "workload seed", "1");
    options.declare("events", "dump the last N debug events of the "
                              "final run (0 = off)", "0");
    options.declare("server",
                    "run the sweep on a wbsim_serve daemon: a TCP "
                    "port or unix:PATH (empty = in-process)",
                    "");
    options.parse(argc, argv);

    const std::string benchmark = options.get("benchmark");
    const std::string knob = options.get("sweep");
    const Count instructions = options.getUint("instructions");
    const Count warmup = instructions / 2;
    const std::uint64_t seed = options.getUint("seed");

    MachineConfig base = figures::baselineMachine();
    base.writeBuffer.depth =
        static_cast<unsigned>(options.getUint("depth"));
    base.writeBuffer.highWaterMark =
        static_cast<unsigned>(options.getUint("retire-at"));
    base.writeBuffer.hazardPolicy =
        parseLoadHazardPolicy(options.get("hazard"));

    BenchmarkProfile profile = spec92::profile(benchmark);

    std::cout << "sweep of '" << knob << "' for " << benchmark
              << "\n\n";
    TextTable table;
    table.setHeader({knob, "config", "R%", "F%", "L%", "T%", "CPI"});
    BarChart chart({"L2-read-access", "buffer-full", "load-hazard"});
    chart.beginGroup(benchmark);

    const std::vector<std::uint64_t> values =
        parseValues(options.get("values"));
    std::vector<MachineConfig> machines;
    machines.reserve(values.size());
    for (std::uint64_t value : values) {
        MachineConfig machine = base;
        applySweep(machine, knob, value);
        machine.validate();
        machines.push_back(machine);
    }

    const std::string server = options.get("server");
    std::vector<SimResults> results;
    if (!server.empty()) {
        results = runOnServer(server, benchmark, machines,
                              instructions, warmup, seed);
    } else {
        results.reserve(machines.size());
        for (const MachineConfig &machine : machines)
            results.push_back(
                runOne(profile, machine, instructions, seed, warmup));
    }

    for (std::size_t i = 0; i < machines.size(); ++i) {
        const SimResults &r = results[i];
        double cpi = double(r.cycles) / double(r.instructions);
        table.addRow({std::to_string(values[i]),
                      machines[i].describe(),
                      formatPercent(r.pctL2ReadAccess()),
                      formatPercent(r.pctBufferFull()),
                      formatPercent(r.pctLoadHazard()),
                      formatPercent(r.pctTotalStalls()),
                      formatDouble(cpi, 3)});
        chart.addBar({std::to_string(values[i]),
                      {r.pctL2ReadAccess(), r.pctBufferFull(),
                       r.pctLoadHazard()}});
    }
    table.render(std::cout);
    std::cout << "\n";
    chart.render(std::cout);

    if (Count events = options.getUint("events"); events > 0) {
        // Replay the last sweep point with an event log attached and
        // show the tail of the microarchitectural story. Always
        // in-process: event logs never cross the wire.
        MachineConfig machine = machines.back();
        EventLog log(events);
        Simulator simulator(machine);
        simulator.attachEventLog(&log);
        SyntheticSource source(profile, instructions, seed);
        simulator.run(source);
        std::cout << "\nlast " << log.size() << " events of the "
                  << values.back() << " run:\n";
        log.dump(std::cout);
    }
    return 0;
}
