/**
 * @file
 * One-factor-at-a-time sensitivity analysis: perturb every machine
 * parameter up and down around a chosen configuration and rank them
 * by their effect on total write-buffer stalls - the "which knob
 * matters" question the paper answers figure by figure, condensed
 * into one table (with seed-replication error bars).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workloads/spec92.hh"

using namespace wbsim;

namespace
{

struct Perturbation
{
    std::string name;
    MachineConfig low;
    MachineConfig high;
};

std::vector<Perturbation>
perturbations(const MachineConfig &base)
{
    std::vector<Perturbation> list;
    auto add = [&](const std::string &name, auto &&mutate_low,
                   auto &&mutate_high) {
        Perturbation p{name, base, base};
        mutate_low(p.low);
        mutate_high(p.high);
        list.push_back(p);
    };
    add("wb.depth (2 / 8)",
        [](MachineConfig &m) { m.writeBuffer.depth = 2; },
        [](MachineConfig &m) { m.writeBuffer.depth = 8; });
    add("wb.retire-at (1 / 4)",
        [](MachineConfig &m) { m.writeBuffer.highWaterMark = 1; },
        [](MachineConfig &m) {
            m.writeBuffer.depth = std::max(m.writeBuffer.depth, 4u);
            m.writeBuffer.highWaterMark = 4;
        });
    add("wb.hazard (flush-full / read-from-WB)",
        [](MachineConfig &m) {
            m.writeBuffer.hazardPolicy = LoadHazardPolicy::FlushFull;
        },
        [](MachineConfig &m) {
            m.writeBuffer.hazardPolicy = LoadHazardPolicy::ReadFromWB;
        });
    add("l1.size (4K / 32K)",
        [](MachineConfig &m) { m.l1d.sizeBytes = 4 * 1024; },
        [](MachineConfig &m) { m.l1d.sizeBytes = 32 * 1024; });
    add("l2.latency (3 / 10)",
        [](MachineConfig &m) { m.l2Latency = 3; },
        [](MachineConfig &m) { m.l2Latency = 10; });
    add("l2.datapath (8B / 32B)",
        [](MachineConfig &m) { m.l2DatapathBytes = 8; },
        [](MachineConfig &m) { m.l2DatapathBytes = 32; });
    add("issue width (1 / 4)",
        [](MachineConfig &m) { m.issueWidth = 1; },
        [](MachineConfig &m) { m.issueWidth = 4; });
    return list;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("benchmark", "SPEC92 model", "fft");
    options.declare("instructions", "instructions per run", "500000");
    options.declare("replicas", "seeds per configuration", "3");
    options.parse(argc, argv);

    RunnerOptions runner;
    runner.instructions = options.getUint("instructions");
    runner.warmup = runner.instructions / 2;
    runner.threads = 1;
    runner.seed = 1;
    auto replicas =
        static_cast<unsigned>(options.getUint("replicas"));

    BenchmarkProfile profile =
        spec92::profile(options.get("benchmark"));
    MachineConfig base = figures::baselineMachine();

    auto metric = [](const SimResults &r) {
        return r.pctTotalStalls();
    };
    MetricSummary base_summary = summarizeMetric(
        runReplicated(profile, base, runner, replicas), metric);

    struct Row
    {
        std::string name;
        MetricSummary low, high;
        double swing;
    };
    std::vector<Row> rows;
    for (const Perturbation &p : perturbations(base)) {
        Row row;
        row.name = p.name;
        row.low = summarizeMetric(
            runReplicated(profile, p.low, runner, replicas), metric);
        row.high = summarizeMetric(
            runReplicated(profile, p.high, runner, replicas), metric);
        row.swing = std::abs(row.high.mean - row.low.mean);
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.swing > b.swing;
              });

    std::cout << "sensitivity of total WB stalls for "
              << profile.name << " (baseline "
              << formatPercent(base_summary.mean) << "% +- "
              << formatPercent(base_summary.sd) << ", " << replicas
              << " seeds)\n\n";
    TextTable table;
    table.setHeader({"parameter", "low T%", "high T%", "swing"});
    for (const Row &row : rows) {
        table.addRow({row.name,
                      formatPercent(row.low.mean) + " +-"
                          + formatPercent(row.low.sd, 2),
                      formatPercent(row.high.mean) + " +-"
                          + formatPercent(row.high.sd, 2),
                      formatPercent(row.swing)});
    }
    table.render(std::cout);
    std::cout << "\n(the paper's conclusion - L2 latency is the "
                 "strongest external knob - should top this table "
                 "for most benchmarks)\n";
    return 0;
}
