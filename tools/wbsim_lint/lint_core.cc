/**
 * @file
 * wbsim-lint core: libclang drivers and the fact-collecting AST walk.
 *
 * One pass over every selected translation unit fills the Program
 * fact base the rules evaluate (lint_core.hh). Per-TU facts merge by
 * USR, and each function body is analyzed exactly once even when its
 * inline definition reappears in many TUs.
 *
 * Lock tracking: the walk maintains the lexical held-capability set —
 * seeded from WBSIM_REQUIRES, grown by lock_guard/unique_lock/
 * scoped_lock/shared_lock declarations and bare mutex .lock() calls,
 * shrunk by .unlock(), and restored at every compound-statement exit.
 * Lambdas are walked in their enclosing function's lexical context,
 * so a condition-variable wait predicate sees the lock its wait
 * holds. The tracker is lexical, not path-sensitive: a lock acquired
 * under one branch of an if is considered held for the rest of that
 * scope only, which matches the RAII idiom the codebase uses
 * everywhere.
 */

#include "lint_core.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include <clang-c/CXCompilationDatabase.h>

namespace wbsim_lint
{

// ---------------------------------------------------------------------
// Small libclang helpers
// ---------------------------------------------------------------------

std::string
str(CXString s)
{
    const char *c = clang_getCString(s);
    std::string out = c != nullptr ? c : "";
    clang_disposeString(s);
    return out;
}

void
cursorLocation(CXCursor cursor, std::string &file, unsigned &line)
{
    CXSourceLocation loc = clang_getCursorLocation(cursor);
    CXFile cxfile;
    unsigned column = 0, offset = 0;
    line = 0;
    clang_getExpansionLocation(loc, &cxfile, &line, &column, &offset);
    if (cxfile == nullptr) {
        file.clear();
        return;
    }
    file = str(clang_File_tryGetRealPathName(cxfile));
    if (file.empty())
        file = str(clang_getFileName(cxfile));
}

bool
isFunctionKind(CXCursorKind kind)
{
    switch (kind) {
      case CXCursor_FunctionDecl:
      case CXCursor_CXXMethod:
      case CXCursor_Constructor:
      case CXCursor_Destructor:
      case CXCursor_ConversionFunction:
      case CXCursor_FunctionTemplate:
        return true;
      default:
        return false;
    }
}

std::string
functionUsr(CXCursor cursor)
{
    CXCursor pattern = clang_getSpecializedCursorTemplate(cursor);
    if (!clang_Cursor_isNull(pattern)
        && !clang_isInvalid(clang_getCursorKind(pattern))) {
        cursor = pattern;
    }
    return str(clang_getCursorUSR(cursor));
}

namespace
{

bool
isRecordKind(CXCursorKind kind)
{
    switch (kind) {
      case CXCursor_ClassDecl:
      case CXCursor_StructDecl:
      case CXCursor_ClassTemplate:
      case CXCursor_ClassTemplatePartialSpecialization:
        return true;
      default:
        return false;
    }
}

} // namespace

std::string
qualifiedName(CXCursor cursor)
{
    std::string name = str(clang_getCursorSpelling(cursor));
    CXCursor parent = clang_getCursorSemanticParent(cursor);
    if (isRecordKind(clang_getCursorKind(parent)))
        return str(clang_getCursorSpelling(parent)) + "::" + name;
    return name;
}

namespace
{

bool
consumePrefix(const std::string &text, const char *prefix,
              std::string &rest)
{
    std::size_t n = std::char_traits<char>::length(prefix);
    if (text.compare(0, n, prefix) != 0)
        return false;
    rest = text.substr(n);
    return true;
}

CXChildVisitResult
annotationVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<Annotations *>(data);
    CXCursorKind kind = clang_getCursorKind(cursor);
    if (kind == CXCursor_AnnotateAttr) {
        std::string text = str(clang_getCursorSpelling(cursor));
        std::string rest;
        if (text == "wbsim::hot")
            out->hot = true;
        else if (text == "wbsim::cold")
            out->cold = true;
        else if (text == "wbsim::devirt_ok")
            out->devirtOk = true;
        else if (text == "wbsim::deterministic")
            out->deterministic = true;
        else if (text == "wbsim::nondet_ok")
            out->nondetOk = true;
        else if (consumePrefix(text, "wbsim::guarded_by:", rest))
            out->guardedBy.push_back(rest);
        else if (consumePrefix(text, "wbsim::requires:", rest))
            out->requiresCaps.push_back(rest);
        else if (consumePrefix(text, "wbsim::acquires_before:", rest))
            out->acquiresBefore.push_back(rest);
    } else if (kind == CXCursor_CXXFinalAttr) {
        out->isFinal = true;
    }
    return CXChildVisit_Continue;
}

} // namespace

Annotations
annotationsOf(CXCursor cursor)
{
    Annotations out;
    clang_visitChildren(cursor, annotationVisitor, &out);
    return out;
}

// ---------------------------------------------------------------------
// Fact tables shared by the walk
// ---------------------------------------------------------------------

namespace
{

/** Names of std members that (may) allocate on the hot path. */
const std::set<std::string> &
allocatingMembers()
{
    static const std::set<std::string> names = {
        "push_back",    "emplace_back",  "push_front", "emplace_front",
        "insert",       "emplace",       "emplace_hint",
        "resize",       "reserve",       "assign",     "append",
        "push",         "operator+=",
    };
    return names;
}

/** Free functions that allocate. */
const std::set<std::string> &
allocatingFunctions()
{
    static const std::set<std::string> names = {
        "malloc",        "calloc",  "realloc", "strdup",
        "aligned_alloc", "operator new", "operator new[]",
    };
    return names;
}

/** Free/member functions whose results depend on wall-clock time,
 *  process scheduling, or an unseeded entropy source
 *  (WL-DETERMINISM). */
const std::set<std::string> &
nondetFunctions()
{
    static const std::set<std::string> names = {
        "time",       "clock_gettime", "gettimeofday", "timespec_get",
        "localtime",  "localtime_r",   "gmtime",       "gmtime_r",
        "ctime",      "clock",
        "rand",       "srand",         "rand_r",       "random",
        "srandom",    "drand48",       "lrand48",      "mrand48",
        "usleep",     "nanosleep",     "sleep",
        "sleep_for",  "sleep_until",
    };
    return names;
}

/** Clock classes whose static now() reads the wall clock. */
const std::set<std::string> &
clockClasses()
{
    static const std::set<std::string> names = {
        "steady_clock", "system_clock", "high_resolution_clock",
    };
    return names;
}

/** std lock classes whose mutex the walk must not mistake for one
 *  of the RAII lock holders' own types. */
bool
isLockHolderType(const std::string &canonical)
{
    return canonical.find("lock_guard") != std::string::npos
        || canonical.find("unique_lock") != std::string::npos
        || canonical.find("scoped_lock") != std::string::npos
        || canonical.find("shared_lock") != std::string::npos;
}

bool
isMutexClassName(const std::string &name)
{
    return name == "mutex" || name == "timed_mutex"
        || name == "recursive_mutex" || name == "shared_mutex"
        || name == "recursive_timed_mutex";
}

bool
usrInStd(const std::string &usr)
{
    return usr.rfind("c:@N@std@", 0) == 0;
}

std::string
canonicalTypeSpelling(CXCursor cursor)
{
    return str(clang_getTypeSpelling(
        clang_getCanonicalType(clang_getCursorType(cursor))));
}

/** True when a resolved callee is an allocating entry point. */
bool
isAllocatingCallee(CXCursor callee, const std::string &usr,
                   const std::string &spelling)
{
    if (allocatingFunctions().count(spelling) != 0)
        return true;
    if (!usrInStd(usr))
        return false;
    if (allocatingMembers().count(spelling) != 0)
        return true;
    // std::map/unordered_map::operator[] inserts; the vector and
    // string subscripts do not.
    if (spelling == "operator[]") {
        CXCursor parent = clang_getCursorSemanticParent(callee);
        std::string cls = str(clang_getCursorSpelling(parent));
        return cls == "map" || cls == "unordered_map";
    }
    return false;
}

/**
 * True when virtual dispatch through @p method is an accepted
 * devirtualization point: the method or its class is `final`, or
 * either carries the wbsim::devirt_ok annotation.
 */
bool
isDevirtExempt(CXCursor method)
{
    Annotations m = annotationsOf(method);
    if (m.devirtOk || m.isFinal)
        return true;
    CXCursor cls = clang_getCursorSemanticParent(method);
    Annotations c = annotationsOf(cls);
    return c.devirtOk || c.isFinal;
}

/**
 * Resolve an annotation's capability name: an already-qualified
 * "Class::member" stands as written; a bare member name qualifies
 * against @p context (the record owning the annotated field, or the
 * annotated function's class).
 */
std::string
resolveCap(const std::string &name, CXCursor context)
{
    if (name.find("::") != std::string::npos)
        return name;
    if (!isRecordKind(clang_getCursorKind(context)))
        return name;
    std::string cls = str(clang_getCursorSpelling(context));
    if (cls.empty())
        return name;
    return cls + "::" + name;
}

/** Capability identity of a referenced mutex: fields qualify as
 *  "Record::member", local variables by their bare name. */
std::string
capOfDecl(CXCursor decl)
{
    if (clang_getCursorKind(decl) == CXCursor_FieldDecl)
        return qualifiedName(decl);
    return str(clang_getCursorSpelling(decl));
}

// ---------------------------------------------------------------------
// TU traversal
// ---------------------------------------------------------------------

struct WalkContext
{
    Program *program = nullptr;
    std::vector<std::string> roots; //!< absolute project prefixes
    //! innermost enclosing project function definition (USR), if any
    std::string currentUsr;
    std::string currentQual;
    //! true when the current function's body facts are fresh (first
    //! definition seen) rather than a redundant re-parse
    bool recordBody = false;
    //! lexical held-capability set (WBSIM_REQUIRES seeds it; RAII
    //! lock declarations and .lock()/.unlock() maintain it)
    std::vector<std::string> held;
    //! resolved WBSIM_REQUIRES set of the current function
    std::set<std::string> currentNeeds;
    //! record name when the current function is its ctor/dtor
    std::string ctorDtorOf;
};

bool
inProject(const WalkContext &ctx, const std::string &file)
{
    for (const std::string &root : ctx.roots) {
        if (file.rfind(root, 0) == 0)
            return true;
    }
    return false;
}

CXChildVisitResult walkVisitor(CXCursor, CXCursor, CXClientData);

void
walkChildren(CXCursor cursor, WalkContext &ctx)
{
    clang_visitChildren(cursor, walkVisitor, &ctx);
}

bool
heldContains(const WalkContext &ctx, const std::string &cap)
{
    return std::find(ctx.held.begin(), ctx.held.end(), cap)
        != ctx.held.end();
}

void
acquireCap(WalkContext &ctx, const std::string &cap,
           const std::string &file, unsigned line)
{
    if (ctx.recordBody) {
        for (const std::string &h : ctx.held) {
            ctx.program->lockEdges.push_back(
                {file, line, ctx.currentQual, h, cap});
        }
        ctx.program->funcs[ctx.currentUsr].acquired.insert(cap);
    }
    ctx.held.push_back(cap);
}

void
releaseCap(WalkContext &ctx, const std::string &cap)
{
    auto it = std::find(ctx.held.rbegin(), ctx.held.rend(), cap);
    if (it != ctx.held.rend())
        ctx.held.erase(std::next(it).base());
}

/** Mutex-typed FieldDecl/VarDecl references under an expression
 *  (the operand list of a RAII lock declaration). */
struct MutexRefs
{
    std::vector<CXCursor> decls;
};

CXChildVisitResult
mutexRefVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<MutexRefs *>(data);
    CXCursorKind kind = clang_getCursorKind(cursor);
    if (kind == CXCursor_MemberRefExpr || kind == CXCursor_DeclRefExpr) {
        CXCursor ref = clang_getCursorReferenced(cursor);
        CXCursorKind refKind = clang_getCursorKind(ref);
        if (refKind == CXCursor_FieldDecl
            || refKind == CXCursor_VarDecl) {
            std::string type = canonicalTypeSpelling(ref);
            if (type.find("mutex") != std::string::npos
                && !isLockHolderType(type)) {
                out->decls.push_back(ref);
            }
        }
    }
    return CXChildVisit_Recurse;
}

/** First FieldDecl/file-scope-VarDecl reference under an expr. */
struct HandleSearch
{
    CXCursor found;
    bool ok = false;
};

CXChildVisitResult
handleVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<HandleSearch *>(data);
    CXCursorKind kind = clang_getCursorKind(cursor);
    if (kind == CXCursor_MemberRefExpr || kind == CXCursor_DeclRefExpr) {
        CXCursor ref = clang_getCursorReferenced(cursor);
        CXCursorKind refKind = clang_getCursorKind(ref);
        if (refKind == CXCursor_FieldDecl
            || refKind == CXCursor_VarDecl) {
            out->found = ref;
            out->ok = true;
            return CXChildVisit_Break;
        }
    }
    return CXChildVisit_Recurse;
}

/** Collect enumerator references grouped by their enum's USR. */
struct EnumRefs
{
    std::map<std::string, std::set<std::string>> byEnum;
};

CXChildVisitResult
enumRefVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<EnumRefs *>(data);
    if (clang_getCursorKind(cursor) == CXCursor_DeclRefExpr) {
        CXCursor ref = clang_getCursorReferenced(cursor);
        if (clang_getCursorKind(ref) == CXCursor_EnumConstantDecl) {
            CXCursor enumDecl = clang_getCursorSemanticParent(ref);
            out->byEnum[str(clang_getCursorUSR(enumDecl))].insert(
                str(clang_getCursorSpelling(ref)));
        }
    }
    return CXChildVisit_Recurse;
}

/** Gather the label expression of each `case` under a switch. */
struct CaseLabels
{
    EnumRefs refs;
};

CXChildVisitResult
caseLabelExprVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    // Only the first child of a CaseStmt is the label expression;
    // stop after it so enumerators used in the case *body* (e.g.
    // `return Channel::X;`) do not count as table coverage.
    clang_visitChildren(cursor, enumRefVisitor, data);
    return CXChildVisit_Break;
}

CXChildVisitResult
switchVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<CaseLabels *>(data);
    if (clang_getCursorKind(cursor) == CXCursor_CaseStmt) {
        clang_visitChildren(cursor, caseLabelExprVisitor, &out->refs);
    }
    return CXChildVisit_Recurse;
}

/** Range-expression child of a CXXForRangeStmt whose type is an
 *  unordered container (everything before the body counts; the
 *  loop variable's element type never matches). */
struct UnorderedRangeSearch
{
    bool found = false;
};

CXChildVisitResult
unorderedRangeVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<UnorderedRangeSearch *>(data);
    if (clang_getCursorKind(cursor) == CXCursor_CompoundStmt)
        return CXChildVisit_Break;
    std::string type = canonicalTypeSpelling(cursor);
    if (type.find("unordered_") != std::string::npos) {
        out->found = true;
        return CXChildVisit_Break;
    }
    return CXChildVisit_Continue;
}

/** If @p type (canonically) is an enum, return its decl's USR. */
std::string
enumUsrOfType(CXType type)
{
    CXType canon = clang_getCanonicalType(type);
    if (canon.kind != CXType_Enum)
        return "";
    return str(clang_getCursorUSR(clang_getTypeDeclaration(canon)));
}

void
noteNameTableNeed(WalkContext &ctx, CXCursor fn,
                  const std::string &spelling)
{
    bool nameLike = spelling.size() > 4
        && spelling.compare(spelling.size() - 4, 4, "Name") == 0;
    bool parseLike = spelling.rfind("parse", 0) == 0
        && spelling.size() > 5;
    if (!nameLike && !parseLike)
        return;

    std::string enumUsr;
    if (nameLike) {
        if (clang_Cursor_getNumArguments(fn) < 1)
            return;
        CXCursor arg0 = clang_Cursor_getArgument(fn, 0);
        enumUsr = enumUsrOfType(clang_getCursorType(arg0));
    } else {
        enumUsr = enumUsrOfType(clang_getCursorResultType(fn));
    }
    if (enumUsr.empty())
        return;

    // The enum may not have been visited yet (forward include
    // order); create the slot and let the EnumDecl visit fill it.
    ctx.program->enums[enumUsr].needsTable = true;
}

void
visitEnumDecl(WalkContext &ctx, CXCursor cursor,
              const std::string &file, unsigned line)
{
    EnumInfo &info = ctx.program->enums[str(clang_getCursorUSR(cursor))];
    if (info.name.empty()) {
        info.name = str(clang_getCursorSpelling(cursor));
        info.file = file;
        info.line = line;
    }
    clang_visitChildren(
        cursor,
        [](CXCursor c, CXCursor, CXClientData data) {
            if (clang_getCursorKind(c) == CXCursor_EnumConstantDecl) {
                static_cast<EnumInfo *>(data)->enumerators.insert(
                    str(clang_getCursorSpelling(c)));
            }
            return CXChildVisit_Continue;
        },
        &info);
}

/** A record's field: capability registration (mutex members) and
 *  declared lock-order edges (WBSIM_ACQUIRES_BEFORE). */
void
visitFieldDecl(WalkContext &ctx, CXCursor cursor,
               const std::string &file, unsigned line)
{
    std::string fieldQual = qualifiedName(cursor);
    std::string type = canonicalTypeSpelling(cursor);
    if (type.find("mutex") != std::string::npos
        && !isLockHolderType(type)) {
        CapabilityInfo &cap = ctx.program->capabilities[fieldQual];
        cap.lockable = true;
        if (cap.file.empty()) {
            cap.file = file;
            cap.line = line;
        }
    }
    Annotations attrs = annotationsOf(cursor);
    if (attrs.acquiresBefore.empty())
        return;
    CXCursor record = clang_getCursorSemanticParent(cursor);
    for (const std::string &after : attrs.acquiresBefore) {
        ctx.program->declaredEdges.push_back(
            {file, line, fieldQual, resolveCap(after, record)});
    }
}

/** True when the callee's own clock/RNG/sleep semantics make any
 *  call to it nondeterministic (WL-DETERMINISM). */
bool
isNondetCallee(CXCursor callee, const std::string &spelling)
{
    if (nondetFunctions().count(spelling) != 0)
        return true;
    std::string cls = str(clang_getCursorSpelling(
        clang_getCursorSemanticParent(callee)));
    if (spelling == "now" && clockClasses().count(cls) != 0)
        return true;
    return cls == "random_device";
}

void
visitCall(WalkContext &ctx, CXCursor cursor, const std::string &file,
          unsigned line)
{
    Func &fn = ctx.program->funcs[ctx.currentUsr];
    CXCursor callee = clang_getCursorReferenced(cursor);

    if (clang_Cursor_isNull(callee)
        || clang_isInvalid(clang_getCursorKind(callee))) {
        // Dependent call in a template pattern: fall back to the
        // spelled member name for the allocation check.
        std::string spelling = str(clang_getCursorSpelling(cursor));
        if (ctx.recordBody
            && allocatingMembers().count(spelling) != 0) {
            fn.allocs.push_back({file, line, spelling + " (dependent)"});
        }
        return;
    }
    if (!isFunctionKind(clang_getCursorKind(callee)))
        return;

    std::string calleeUsr = functionUsr(callee);
    std::string spelling = str(clang_getCursorSpelling(callee));

    // Bare mutex lock()/unlock() maintain the lexical held set just
    // like the RAII holders (RAII is the idiom; this covers the
    // exceptions and the fixtures that seed violations with it).
    if (spelling == "lock" || spelling == "unlock") {
        std::string cls = str(clang_getCursorSpelling(
            clang_getCursorSemanticParent(callee)));
        if (isMutexClassName(cls)) {
            MutexRefs refs;
            clang_visitChildren(cursor, mutexRefVisitor, &refs);
            if (!refs.decls.empty()) {
                std::string cap = capOfDecl(refs.decls.front());
                if (spelling == "lock")
                    acquireCap(ctx, cap, file, line);
                else
                    releaseCap(ctx, cap);
            }
        }
    }

    if (ctx.recordBody) {
        if (isAllocatingCallee(callee, calleeUsr, spelling))
            fn.allocs.push_back({file, line, qualifiedName(callee)});

        if (isNondetCallee(callee, spelling))
            fn.nondet.push_back({file, line, qualifiedName(callee)});

        if (clang_CXXMethod_isVirtual(callee) != 0
            && clang_Cursor_isDynamicCall(cursor) != 0
            && !isDevirtExempt(callee)) {
            fn.virtuals.push_back({file, line, qualifiedName(callee)});
        }

        fn.callees.insert(calleeUsr);

        // WL-LOCK-GUARD: calls into WBSIM_REQUIRES functions. The
        // callee's needs may come from a header declaration already
        // merged, or sit on this very cursor (single-file fixtures).
        std::set<std::string> calleeNeeds;
        auto it = ctx.program->funcs.find(calleeUsr);
        if (it != ctx.program->funcs.end())
            calleeNeeds = it->second.needsCaps;
        Annotations calleeAttrs = annotationsOf(callee);
        CXCursor calleeParent = clang_getCursorSemanticParent(callee);
        for (const std::string &need : calleeAttrs.requiresCaps)
            calleeNeeds.insert(resolveCap(need, calleeParent));
        for (const std::string &cap : calleeNeeds) {
            bool ok = heldContains(ctx, cap)
                || ctx.currentNeeds.count(cap) != 0;
            ctx.program->requiresCalls.push_back(
                {file, line, ctx.currentQual, qualifiedName(callee),
                 cap, ok});
        }

        // WL-LOCK-ORDER: calls made under a lock pick up the
        // callee's transitive acquires at evaluation time.
        if (!ctx.held.empty()) {
            ctx.program->heldCalls.push_back(
                {file, line, ctx.currentQual, ctx.held, calleeUsr,
                 qualifiedName(callee)});
        }
    }

    // WL-PUB-UNIQUE: a MetricsRegistry publish call. Tracked for
    // every project body (not only hot ones), deduped by site.
    if ((spelling == "add" || spelling == "set" || spelling == "sample")
        && str(clang_getCursorSpelling(
               clang_getCursorSemanticParent(callee)))
            == "MetricsRegistry"
        && clang_Cursor_getNumArguments(cursor) >= 1) {
        HandleSearch search;
        CXCursor arg0 = clang_Cursor_getArgument(cursor, 0);
        clang_visitChildren(arg0, handleVisitor, &search);
        if (!search.ok) {
            // The argument may itself be the reference.
            handleVisitor(arg0, cursor, &search);
        }
        if (search.ok) {
            std::string handleUsr = str(clang_getCursorUSR(search.found));
            if (!handleUsr.empty()) {
                std::ostringstream key;
                key << file << ":" << line;
                ctx.program->publishes[handleUsr].emplace(
                    key.str(),
                    PublishSite{file, line, ctx.currentQual,
                                str(clang_getCursorSpelling(
                                    search.found))});
            }
        }
    }
}

/** A touch of a data member inside a body: the WL-LOCK-GUARD access
 *  check, judged against the lexical held set right here. */
void
visitMemberRef(WalkContext &ctx, CXCursor cursor,
               const std::string &file, unsigned line)
{
    CXCursor ref = clang_getCursorReferenced(cursor);
    if (clang_getCursorKind(ref) != CXCursor_FieldDecl)
        return;
    Annotations attrs = annotationsOf(ref);
    if (attrs.guardedBy.empty())
        return;
    CXCursor record = clang_getCursorSemanticParent(ref);
    std::string owner = str(clang_getCursorSpelling(record));
    for (const std::string &guard : attrs.guardedBy) {
        std::string cap = resolveCap(guard, record);
        bool ok = heldContains(ctx, cap)
            || ctx.currentNeeds.count(cap) != 0
            || (!ctx.ctorDtorOf.empty() && ctx.ctorDtorOf == owner);
        ctx.program->guardedAccesses.push_back(
            {file, line, ctx.currentQual, qualifiedName(ref), cap,
             ok});
    }
}

void
visitFunctionDecl(WalkContext &ctx, CXCursor cursor,
                  const std::string &file, unsigned line)
{
    std::string usr = functionUsr(cursor);
    if (usr.empty())
        return;
    Func &fn = ctx.program->funcs[usr];

    Annotations attrs = annotationsOf(cursor);
    fn.hot = fn.hot || attrs.hot;
    fn.cold = fn.cold || attrs.cold;
    fn.deterministic = fn.deterministic || attrs.deterministic;
    fn.nondetOk = fn.nondetOk || attrs.nondetOk;
    CXCursor parent = clang_getCursorSemanticParent(cursor);
    for (const std::string &need : attrs.requiresCaps)
        fn.needsCaps.insert(resolveCap(need, parent));
    if (fn.qual.empty())
        fn.qual = qualifiedName(cursor);
    if (fn.file.empty() || (!fn.defined && clang_isCursorDefinition(cursor))) {
        fn.file = file;
        fn.line = line;
    }

    noteNameTableNeed(ctx, cursor, str(clang_getCursorSpelling(cursor)));

    if (!clang_isCursorDefinition(cursor))
        return;

    // Each body is analyzed once; inline functions reappear in every
    // TU that includes their header.
    bool fresh = !fn.bodyDone;
    fn.bodyDone = true;
    fn.defined = true;

    CXCursorKind kind = clang_getCursorKind(cursor);
    std::string prevUsr = ctx.currentUsr;
    std::string prevQual = ctx.currentQual;
    bool prevRecord = ctx.recordBody;
    std::vector<std::string> prevHeld = std::move(ctx.held);
    std::set<std::string> prevNeeds = std::move(ctx.currentNeeds);
    std::string prevCtorDtor = std::move(ctx.ctorDtorOf);

    ctx.currentUsr = usr;
    ctx.currentQual = fn.qual;
    ctx.recordBody = fresh;
    // WBSIM_REQUIRES is a promise about every caller: inside the
    // body the capabilities count as held.
    ctx.held.assign(fn.needsCaps.begin(), fn.needsCaps.end());
    ctx.currentNeeds = fn.needsCaps;
    ctx.ctorDtorOf =
        (kind == CXCursor_Constructor || kind == CXCursor_Destructor)
            ? str(clang_getCursorSpelling(parent))
            : "";

    walkChildren(cursor, ctx);

    ctx.currentUsr = prevUsr;
    ctx.currentQual = prevQual;
    ctx.recordBody = prevRecord;
    ctx.held = std::move(prevHeld);
    ctx.currentNeeds = std::move(prevNeeds);
    ctx.ctorDtorOf = std::move(prevCtorDtor);
}

CXChildVisitResult
walkVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto &ctx = *static_cast<WalkContext *>(data);
    CXCursorKind kind = clang_getCursorKind(cursor);

    // Containers: always descend.
    switch (kind) {
      case CXCursor_Namespace:
      case CXCursor_ClassDecl:
      case CXCursor_StructDecl:
      case CXCursor_ClassTemplate:
      case CXCursor_ClassTemplatePartialSpecialization:
      case CXCursor_UnexposedDecl: // extern "C", etc.
      case CXCursor_LinkageSpec:
        return CXChildVisit_Recurse;
      default:
        break;
    }

    std::string file;
    unsigned line = 0;
    cursorLocation(cursor, file, line);
    bool project = inProject(ctx, file);

    if (isFunctionKind(kind)) {
        if (!project)
            return CXChildVisit_Continue;
        visitFunctionDecl(ctx, cursor, file, line);
        return CXChildVisit_Continue;
    }

    if (kind == CXCursor_EnumDecl) {
        if (project && clang_isCursorDefinition(cursor))
            visitEnumDecl(ctx, cursor, file, line);
        return CXChildVisit_Continue;
    }

    if (kind == CXCursor_FieldDecl && ctx.currentUsr.empty()) {
        if (project)
            visitFieldDecl(ctx, cursor, file, line);
        return CXChildVisit_Continue;
    }

    if (kind == CXCursor_VarDecl && ctx.currentUsr.empty()) {
        // File-scope variable: a candidate name table (WL-ENUM-TABLE)
        // when its initializer mentions enumerators.
        if (project) {
            EnumRefs refs;
            clang_visitChildren(cursor, enumRefVisitor, &refs);
            for (auto &[enumUsr, covered] : refs.byEnum) {
                ctx.program->coverage[enumUsr].push_back(
                    {file, line, str(clang_getCursorSpelling(cursor)),
                     covered});
            }
        }
        return CXChildVisit_Continue;
    }

    // Inside a function body.
    if (!ctx.currentUsr.empty() && project) {
        if (kind == CXCursor_CompoundStmt) {
            // Lexical lock scope: whatever this block acquires dies
            // with it (RAII), and whatever it unlocks is restored —
            // walk the children explicitly, then rewind.
            std::vector<std::string> saved = ctx.held;
            walkChildren(cursor, ctx);
            ctx.held = std::move(saved);
            return CXChildVisit_Continue;
        }
        if (kind == CXCursor_VarDecl) {
            std::string type = canonicalTypeSpelling(cursor);
            if (isLockHolderType(type)) {
                // A RAII holder: every mutex named in its initializer
                // is acquired here (scoped_lock may name several).
                MutexRefs refs;
                clang_visitChildren(cursor, mutexRefVisitor, &refs);
                for (CXCursor decl : refs.decls)
                    acquireCap(ctx, capOfDecl(decl), file, line);
                return CXChildVisit_Continue;
            }
            if (ctx.recordBody
                && type.find("random_device") != std::string::npos) {
                ctx.program->funcs[ctx.currentUsr].nondet.push_back(
                    {file, line, "std::random_device"});
            }
            return CXChildVisit_Recurse;
        }
        if (kind == CXCursor_MemberRefExpr) {
            if (ctx.recordBody)
                visitMemberRef(ctx, cursor, file, line);
            return CXChildVisit_Recurse;
        }
        if (kind == CXCursor_CallExpr) {
            visitCall(ctx, cursor, file, line);
            walkChildren(cursor, ctx); // nested calls and lambdas
            return CXChildVisit_Continue;
        }
        if (kind == CXCursor_CXXForRangeStmt && ctx.recordBody) {
            UnorderedRangeSearch search;
            clang_visitChildren(cursor, unorderedRangeVisitor,
                                &search);
            if (search.found) {
                ctx.program->funcs[ctx.currentUsr]
                    .unorderedIters.push_back(
                        {file, line, "unordered-range"});
            }
            return CXChildVisit_Recurse;
        }
        if (kind == CXCursor_CXXNewExpr && ctx.recordBody) {
            ctx.program->funcs[ctx.currentUsr].allocs.push_back(
                {file, line, "operator new"});
            return CXChildVisit_Recurse;
        }
        if (kind == CXCursor_CXXDeleteExpr && ctx.recordBody) {
            ctx.program->funcs[ctx.currentUsr].allocs.push_back(
                {file, line, "operator delete"});
            return CXChildVisit_Recurse;
        }
        if (kind == CXCursor_SwitchStmt && ctx.recordBody) {
            CaseLabels labels;
            clang_visitChildren(cursor, switchVisitor, &labels);
            for (auto &[enumUsr, covered] : labels.refs.byEnum) {
                ctx.program->coverage[enumUsr].push_back(
                    {file, line, ctx.currentQual, covered});
            }
            // fall through to recurse for nested calls
        }
    }

    return CXChildVisit_Recurse;
}

} // namespace

// ---------------------------------------------------------------------
// Diagnostics and baseline
// ---------------------------------------------------------------------

std::string
baseName(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string
diagKey(const Diagnostic &d)
{
    return d.rule + "|" + baseName(d.file) + "|" + d.entity + "|"
        + d.detail;
}

bool
globMatch(const char *pattern, const char *text)
{
    if (*pattern == '\0')
        return *text == '\0';
    if (*pattern == '*') {
        for (const char *t = text;; ++t) {
            if (globMatch(pattern + 1, t))
                return true;
            if (*t == '\0')
                return false;
        }
    }
    return *pattern == *text && globMatch(pattern + 1, text + 1);
}

bool
Baseline::matches(const std::string &key)
{
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        if (globMatch(patterns[i].c_str(), key.c_str())) {
            used[i] = true;
            return true;
        }
    }
    return false;
}

bool
loadBaseline(const std::string &path, Baseline &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string lineText;
    while (std::getline(in, lineText)) {
        std::size_t start = lineText.find_first_not_of(" \t");
        if (start == std::string::npos || lineText[start] == '#')
            continue;
        std::size_t end = lineText.find_last_not_of(" \t\r");
        out.patterns.push_back(lineText.substr(start, end - start + 1));
        out.used.push_back(false);
    }
    return true;
}

// ---------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------

namespace
{

std::vector<const Rule *> &
mutableRules()
{
    static std::vector<const Rule *> rules;
    return rules;
}

} // namespace

const std::vector<const Rule *> &
allRules()
{
    std::vector<const Rule *> &rules = mutableRules();
    std::sort(rules.begin(), rules.end(),
              [](const Rule *a, const Rule *b) {
                  return std::string(a->id()) < b->id();
              });
    return rules;
}

RuleRegistrar::RuleRegistrar(const Rule *rule)
{
    mutableRules().push_back(rule);
}

void
forEachReachable(const Program &program, bool (*isRoot)(const Func &),
                 void (*visit)(const Func &root, const Func &fn,
                               std::vector<Diagnostic> &out),
                 std::vector<Diagnostic> &out)
{
    for (const auto &[rootUsr, root] : program.funcs) {
        if (!isRoot(root))
            continue;
        std::vector<const std::string *> stack{&rootUsr};
        std::set<std::string> visited{rootUsr};
        while (!stack.empty()) {
            const std::string &usr = *stack.back();
            stack.pop_back();
            auto it = program.funcs.find(usr);
            if (it == program.funcs.end())
                continue;
            const Func &fn = it->second;
            if (fn.cold)
                continue;

            visit(root, fn, out);

            for (const std::string &callee : fn.callees) {
                if (visited.insert(callee).second) {
                    auto cit = program.funcs.find(callee);
                    if (cit != program.funcs.end() && cit->second.defined)
                        stack.push_back(&cit->first);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Parsing drivers
// ---------------------------------------------------------------------

namespace
{

int parseIssues = 0;

void
reportTuDiagnostics(CXTranslationUnit tu, const std::string &name,
                    bool verbose)
{
    unsigned n = clang_getNumDiagnostics(tu);
    for (unsigned i = 0; i < n; ++i) {
        CXDiagnostic diag = clang_getDiagnostic(tu, i);
        CXDiagnosticSeverity sev = clang_getDiagnosticSeverity(diag);
        if (sev >= CXDiagnostic_Error) {
            ++parseIssues;
            if (parseIssues <= 20 || verbose) {
                std::string text = str(clang_formatDiagnostic(
                    diag, clang_defaultDiagnosticDisplayOptions()));
                std::fprintf(stderr, "wbsim-lint: [parse] %s: %s\n",
                             name.c_str(), text.c_str());
            }
        }
        clang_disposeDiagnostic(diag);
    }
}

bool
analyzeTu(CXIndex index, WalkContext &ctx, const char *filename,
          const std::vector<const char *> &argv, bool fullArgv,
          bool verbose)
{
    CXTranslationUnit tu = nullptr;
    unsigned flags = CXTranslationUnit_KeepGoing;
    CXErrorCode err = fullArgv
        ? clang_parseTranslationUnit2FullArgv(
              index, filename, argv.data(),
              static_cast<int>(argv.size()), nullptr, 0, flags, &tu)
        : clang_parseTranslationUnit2(
              index, filename, argv.data(),
              static_cast<int>(argv.size()), nullptr, 0, flags, &tu);
    if (err != CXError_Success || tu == nullptr) {
        std::fprintf(stderr,
                     "wbsim-lint: failed to parse '%s' (error %d)\n",
                     filename != nullptr ? filename : "<db>",
                     static_cast<int>(err));
        ++parseIssues;
        return false;
    }
    reportTuDiagnostics(
        tu, filename != nullptr ? filename : "<db>", verbose);
    clang_visitChildren(clang_getTranslationUnitCursor(tu), walkVisitor,
                        &ctx);
    clang_disposeTranslationUnit(tu);
    return true;
}

bool
runDatabaseMode(CXIndex index, const Options &opts, WalkContext &ctx)
{
    CXCompilationDatabase_Error dbErr = CXCompilationDatabase_NoError;
    CXCompilationDatabase db = clang_CompilationDatabase_fromDirectory(
        opts.buildDir.c_str(), &dbErr);
    if (dbErr != CXCompilationDatabase_NoError) {
        std::fprintf(stderr,
                     "wbsim-lint: no compile_commands.json in '%s'\n",
                     opts.buildDir.c_str());
        return false;
    }
    CXCompileCommands commands =
        clang_CompilationDatabase_getAllCompileCommands(db);
    unsigned n = clang_CompileCommands_getSize(commands);
    unsigned parsed = 0;
    for (unsigned i = 0; i < n; ++i) {
        CXCompileCommand command =
            clang_CompileCommands_getCommand(commands, i);
        std::string file = str(clang_CompileCommand_getFilename(command));
        if (!opts.tuFilters.empty()) {
            bool keep = false;
            for (const std::string &f : opts.tuFilters)
                keep = keep || file.find(f) != std::string::npos;
            if (!keep)
                continue;
        }

        std::string dir = str(clang_CompileCommand_getDirectory(command));
        if (!dir.empty() && chdir(dir.c_str()) != 0) {
            std::fprintf(stderr, "wbsim-lint: cannot chdir to '%s'\n",
                         dir.c_str());
            ++parseIssues;
            continue;
        }

        unsigned nargs = clang_CompileCommand_getNumArgs(command);
        std::vector<std::string> args;
        args.reserve(nargs);
        for (unsigned a = 0; a < nargs; ++a)
            args.push_back(str(clang_CompileCommand_getArg(command, a)));
        std::vector<const char *> argv;
        argv.reserve(args.size());
        for (const std::string &a : args)
            argv.push_back(a.c_str());

        if (opts.verbose)
            std::fprintf(stderr, "wbsim-lint: parsing %s\n",
                         file.c_str());
        analyzeTu(index, ctx, nullptr, argv, /*fullArgv=*/true,
                  opts.verbose);
        ++parsed;
    }
    clang_CompileCommands_dispose(commands);
    clang_CompilationDatabase_dispose(db);
    if (parsed == 0) {
        std::fprintf(stderr,
                     "wbsim-lint: no translation units matched\n");
        return false;
    }
    if (opts.verbose)
        std::fprintf(stderr, "wbsim-lint: parsed %u TUs\n", parsed);
    return true;
}

bool
runDirectMode(CXIndex index, const Options &opts, WalkContext &ctx)
{
    std::vector<const char *> argv;
    argv.reserve(opts.clangArgs.size());
    for (const std::string &a : opts.clangArgs)
        argv.push_back(a.c_str());
    bool any = false;
    for (const std::string &file : opts.files) {
        any = analyzeTu(index, ctx, file.c_str(), argv,
                        /*fullArgv=*/false, opts.verbose)
            || any;
    }
    return any;
}

} // namespace

bool
collectProgram(const Options &opts, Program &program)
{
    WalkContext ctx;
    ctx.program = &program;
    ctx.roots = opts.roots;

    CXIndex index = clang_createIndex(/*excludePCH=*/0,
                                      /*displayDiagnostics=*/0);
    bool ok = opts.buildDir.empty()
        ? runDirectMode(index, opts, ctx)
        : runDatabaseMode(index, opts, ctx);
    clang_disposeIndex(index);
    return ok;
}

int
parseIssueCount()
{
    return parseIssues;
}

std::string
absolutePath(const std::string &path)
{
    if (!path.empty() && path[0] == '/')
        return path;
    char buf[4096];
    if (getcwd(buf, sizeof buf) == nullptr)
        return path;
    return std::string(buf) + "/" + path;
}

} // namespace wbsim_lint
