/**
 * @file
 * wbsim-lint entry point: options, rule selection, output.
 *
 * All analysis lives in lint_core.cc (the walk) and the rules/
 * sources (the passes); this file only wires them together and owns
 * the output contract the fixtures and CI depend on:
 *
 *   <file>:<line>: error: [WL-RULE] <message>
 *   wbsim-lint: note: stale baseline entry [WL-RULE]: <pattern>
 *   wbsim-lint: N diagnostic(s), M baselined, P parse issue(s)
 *
 * Exit status: 0 clean, 1 diagnostics reported, 2 usage/parse-setup
 * failure.
 */

#include "lint_core.hh"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace
{

using namespace wbsim_lint;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: wbsim_lint -p <build-dir> --root <dir> [options]\n"
        "       wbsim_lint --root <dir> [options] file.cc... -- "
        "<clang args>\n"
        "       wbsim_lint --list-rules\n"
        "options:\n"
        "  -p <dir>               load <dir>/compile_commands.json\n"
        "  --root <dir>           project root (repeatable); only\n"
        "                         code under a root is analyzed\n"
        "  --tu-filter <substr>   only parse TUs whose path contains\n"
        "                         <substr> (repeatable)\n"
        "  --rules <csv>          run only the listed rule IDs\n"
        "  --list-rules           print registered rules and exit\n"
        "  --baseline <file>      suppress diagnostics matching keys\n"
        "  --update-baseline <f>  write current diagnostic keys to f\n"
        "  --verbose              narrate parsing\n");
    return 2;
}

void
splitCsv(const std::string &csv, std::vector<std::string> &out)
{
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
}

/** Rule ID of a baseline key/pattern: the field before the first
 *  '|'. May contain '*' when the pattern wildcards the rule. */
std::string
ruleOfPattern(const std::string &pattern)
{
    return pattern.substr(0, pattern.find('|'));
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    bool afterDashes = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (afterDashes) {
            opts.clangArgs.push_back(arg);
        } else if (arg == "--") {
            afterDashes = true;
        } else if (arg == "-p" && i + 1 < argc) {
            opts.buildDir = argv[++i];
        } else if (arg == "--root" && i + 1 < argc) {
            opts.roots.push_back(absolutePath(argv[++i]));
        } else if (arg == "--tu-filter" && i + 1 < argc) {
            opts.tuFilters.push_back(argv[++i]);
        } else if (arg == "--rules" && i + 1 < argc) {
            splitCsv(argv[++i], opts.ruleIds);
        } else if (arg.rfind("--rules=", 0) == 0) {
            splitCsv(arg.substr(8), opts.ruleIds);
        } else if (arg == "--list-rules") {
            opts.listRules = true;
        } else if (arg == "--baseline" && i + 1 < argc) {
            opts.baselinePath = argv[++i];
        } else if (arg == "--update-baseline" && i + 1 < argc) {
            opts.updateBaselinePath = argv[++i];
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "wbsim-lint: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else {
            opts.files.push_back(absolutePath(arg));
        }
    }

    if (opts.listRules) {
        for (const Rule *rule : allRules())
            std::printf("%-16s %s\n", rule->id(), rule->summary());
        return 0;
    }
    if (opts.roots.empty() || (opts.buildDir.empty() && opts.files.empty()))
        return usage();

    // Resolve the rule selection before any parsing so a typo fails
    // fast.
    std::vector<const Rule *> selected;
    std::set<std::string> selectedIds;
    for (const Rule *rule : allRules()) {
        bool wanted = opts.ruleIds.empty();
        for (const std::string &id : opts.ruleIds)
            wanted = wanted || id == rule->id();
        if (wanted) {
            selected.push_back(rule);
            selectedIds.insert(rule->id());
        }
    }
    for (const std::string &id : opts.ruleIds) {
        if (selectedIds.count(id) == 0) {
            std::fprintf(stderr,
                         "wbsim-lint: unknown rule '%s' (see "
                         "--list-rules)\n",
                         id.c_str());
            return 2;
        }
    }

    Baseline baseline;
    if (!opts.baselinePath.empty()) {
        std::string path = absolutePath(opts.baselinePath);
        if (!loadBaseline(path, baseline)) {
            std::fprintf(stderr,
                         "wbsim-lint: cannot read baseline '%s'\n",
                         path.c_str());
            return 2;
        }
    }
    std::string updatePath = opts.updateBaselinePath.empty()
        ? ""
        : absolutePath(opts.updateBaselinePath);

    Program program;
    if (!collectProgram(opts, program))
        return 2;

    std::vector<Diagnostic> diags;
    for (const Rule *rule : selected)
        rule->evaluate(program, diags);

    // Dedup (a site can be reachable from several hot roots and a
    // header parses in many TUs), then order for stable output.
    std::map<std::string, Diagnostic> unique;
    for (Diagnostic &d : diags) {
        unique.emplace(d.file + ":" + std::to_string(d.line) + ":"
                           + d.rule + ":" + d.detail,
                       std::move(d));
    }

    if (!updatePath.empty()) {
        std::ofstream out(updatePath);
        out << "# wbsim-lint baseline: one '|'-separated key per "
               "line, '*' wildcards.\n"
            << "# key = RULE|file-basename|entity|detail\n";
        std::set<std::string> keys;
        for (const auto &[sortKey, d] : unique)
            keys.insert(diagKey(d));
        for (const std::string &k : keys)
            out << k << "\n";
        std::fprintf(stderr, "wbsim-lint: wrote %zu baseline keys\n",
                     keys.size());
    }

    unsigned reported = 0, suppressed = 0;
    for (const auto &[sortKey, d] : unique) {
        if (baseline.matches(diagKey(d))) {
            ++suppressed;
            continue;
        }
        ++reported;
        std::printf("%s:%u: error: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
    }
    for (std::size_t i = 0; i < baseline.patterns.size(); ++i) {
        if (baseline.used[i])
            continue;
        // A suppression for a rule that was not selected this run is
        // merely unexercised, not stale; wildcarded rule fields are
        // always worth flagging.
        std::string rule = ruleOfPattern(baseline.patterns[i]);
        if (!opts.ruleIds.empty()
            && rule.find('*') == std::string::npos
            && selectedIds.count(rule) == 0) {
            continue;
        }
        std::fprintf(stderr,
                     "wbsim-lint: note: stale baseline entry [%s]: "
                     "%s\n",
                     rule.c_str(), baseline.patterns[i].c_str());
    }
    std::printf(
        "wbsim-lint: %u diagnostic(s), %u baselined, %d parse "
        "issue(s)\n",
        reported, suppressed, parseIssueCount());
    return reported == 0 ? 0 : 1;
}
