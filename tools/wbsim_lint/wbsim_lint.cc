/**
 * @file
 * wbsim-lint: a libclang-based checker for the simulator's hot-path
 * discipline (DESIGN.md §10).
 *
 * The simulator's performance model depends on source-level contracts
 * that the compiler cannot enforce by itself:
 *
 *  - WL-HOT-ALLOC   functions annotated `wbsim::hot` — and everything
 *                   they transitively call inside the project — must
 *                   not allocate: no operator new/delete, no malloc,
 *                   no growing std containers.
 *  - WL-HOT-VIRTUAL the same closure must not dispatch virtually,
 *                   except through interfaces annotated
 *                   `wbsim::devirt_ok` (the documented trigger/victim
 *                   escape hatches) or through `final` methods and
 *                   classes, which the optimiser devirtualizes.
 *  - WL-ENUM-TABLE  every enum that has a `*Name()` / `parse*()`
 *                   string mapping must have at least one complete
 *                   table: a switch or a file-scope name table that
 *                   mentions every enumerator.
 *  - WL-PUB-UNIQUE  every MetricsRegistry handle field is published
 *                   (add/set/sample) from exactly one source site, so
 *                   a metric's meaning can be read off one location.
 *
 * Traversal stops at functions annotated `wbsim::cold` (diagnostic
 * and cross-check paths, which allocate freely by design).
 *
 * The tool is a plain libclang C-API client: it loads a CMake
 * compile_commands.json (`-p <build-dir>`), parses every matching
 * translation unit, merges per-TU facts by USR, and evaluates the
 * rules over the merged program. Known, justified violations live in
 * a baseline file ('|'-separated keys, '*' wildcards); everything
 * else is an error. See tools/wbsim_lint/README.md.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <clang-c/CXCompilationDatabase.h>
#include <clang-c/Index.h>

namespace
{

// ---------------------------------------------------------------------
// Small libclang helpers
// ---------------------------------------------------------------------

/** Take ownership of a CXString and return it as a std::string. */
std::string
str(CXString s)
{
    const char *c = clang_getCString(s);
    std::string out = c != nullptr ? c : "";
    clang_disposeString(s);
    return out;
}

/** Expansion location of a cursor as (file, line). */
void
cursorLocation(CXCursor cursor, std::string &file, unsigned &line)
{
    CXSourceLocation loc = clang_getCursorLocation(cursor);
    CXFile cxfile;
    unsigned column = 0, offset = 0;
    line = 0;
    clang_getExpansionLocation(loc, &cxfile, &line, &column, &offset);
    if (cxfile == nullptr) {
        file.clear();
        return;
    }
    file = str(clang_File_tryGetRealPathName(cxfile));
    if (file.empty())
        file = str(clang_getFileName(cxfile));
}

bool
isFunctionKind(CXCursorKind kind)
{
    switch (kind) {
      case CXCursor_FunctionDecl:
      case CXCursor_CXXMethod:
      case CXCursor_Constructor:
      case CXCursor_Destructor:
      case CXCursor_ConversionFunction:
      case CXCursor_FunctionTemplate:
        return true;
      default:
        return false;
    }
}

/**
 * The canonical identity of a function across translation units:
 * its USR, with template specializations folded back onto their
 * pattern so attributes written on the template cover every
 * instantiation.
 */
std::string
functionUsr(CXCursor cursor)
{
    CXCursor pattern = clang_getSpecializedCursorTemplate(cursor);
    if (!clang_Cursor_isNull(pattern)
        && !clang_isInvalid(clang_getCursorKind(pattern))) {
        cursor = pattern;
    }
    return str(clang_getCursorUSR(cursor));
}

/** "Class::name" when the semantic parent is a record, else "name". */
std::string
qualifiedName(CXCursor cursor)
{
    std::string name = str(clang_getCursorSpelling(cursor));
    CXCursor parent = clang_getCursorSemanticParent(cursor);
    switch (clang_getCursorKind(parent)) {
      case CXCursor_ClassDecl:
      case CXCursor_StructDecl:
      case CXCursor_ClassTemplate:
      case CXCursor_ClassTemplatePartialSpecialization:
        return str(clang_getCursorSpelling(parent)) + "::" + name;
      default:
        return name;
    }
}

/** Annotations present on one declaration cursor. */
struct Annotations
{
    bool hot = false;
    bool cold = false;
    bool devirtOk = false;
    bool isFinal = false;
};

CXChildVisitResult
annotationVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<Annotations *>(data);
    CXCursorKind kind = clang_getCursorKind(cursor);
    if (kind == CXCursor_AnnotateAttr) {
        std::string text = str(clang_getCursorSpelling(cursor));
        if (text == "wbsim::hot")
            out->hot = true;
        else if (text == "wbsim::cold")
            out->cold = true;
        else if (text == "wbsim::devirt_ok")
            out->devirtOk = true;
    } else if (kind == CXCursor_CXXFinalAttr) {
        out->isFinal = true;
    }
    return CXChildVisit_Continue;
}

Annotations
annotationsOf(CXCursor cursor)
{
    Annotations out;
    clang_visitChildren(cursor, annotationVisitor, &out);
    return out;
}

// ---------------------------------------------------------------------
// Merged program model
// ---------------------------------------------------------------------

/** One would-be diagnostic inside a function body. */
struct BodySite
{
    std::string file;
    unsigned line = 0;
    std::string detail; //!< callee or handle, for messages and keys
};

/** Everything known about one function, merged across TUs. */
struct Func
{
    std::string qual;      //!< display name ("Class::method")
    std::string file;      //!< definition (or first decl) location
    unsigned line = 0;
    bool hot = false;      //!< wbsim::hot on any declaration
    bool cold = false;     //!< wbsim::cold on any declaration
    bool defined = false;  //!< body seen in some project TU
    bool bodyDone = false; //!< body facts already collected once
    std::set<std::string> callees;   //!< USRs of resolved callees
    std::vector<BodySite> allocs;    //!< allocating calls in the body
    std::vector<BodySite> virtuals;  //!< virtual dispatches in body
};

/** One enum that may need a complete name table. */
struct EnumInfo
{
    std::string name;
    std::string file;
    unsigned line = 0;
    std::set<std::string> enumerators;
    bool needsTable = false; //!< has a *Name()/parse*() mapping
};

/** One switch or table initializer that names enumerators of E. */
struct Coverage
{
    std::string file;
    unsigned line = 0;
    std::string entity; //!< enclosing function or variable
    std::set<std::string> covered;
};

/** One MetricsRegistry add/set/sample call on a handle field. */
struct PublishSite
{
    std::string file;
    unsigned line = 0;
    std::string entity;
    std::string handle; //!< handle field spelling
};

struct Program
{
    std::map<std::string, Func> funcs;          //!< by USR
    std::map<std::string, EnumInfo> enums;      //!< by USR
    std::map<std::string, std::vector<Coverage>> coverage; //!< enum USR
    //! handle USR -> site key "file:line" -> site
    std::map<std::string, std::map<std::string, PublishSite>> publishes;
};

/** Names of std members that (may) allocate on the hot path. */
const std::set<std::string> &
allocatingMembers()
{
    static const std::set<std::string> names = {
        "push_back",    "emplace_back",  "push_front", "emplace_front",
        "insert",       "emplace",       "emplace_hint",
        "resize",       "reserve",       "assign",     "append",
        "push",         "operator+=",
    };
    return names;
}

/** Free functions that allocate. */
const std::set<std::string> &
allocatingFunctions()
{
    static const std::set<std::string> names = {
        "malloc",        "calloc",  "realloc", "strdup",
        "aligned_alloc", "operator new", "operator new[]",
    };
    return names;
}

bool
usrInStd(const std::string &usr)
{
    return usr.rfind("c:@N@std@", 0) == 0;
}

/** True when a resolved callee is an allocating entry point. */
bool
isAllocatingCallee(CXCursor callee, const std::string &usr,
                   const std::string &spelling)
{
    if (allocatingFunctions().count(spelling) != 0)
        return true;
    if (!usrInStd(usr))
        return false;
    if (allocatingMembers().count(spelling) != 0)
        return true;
    // std::map/unordered_map::operator[] inserts; the vector and
    // string subscripts do not.
    if (spelling == "operator[]") {
        CXCursor parent = clang_getCursorSemanticParent(callee);
        std::string cls = str(clang_getCursorSpelling(parent));
        return cls == "map" || cls == "unordered_map";
    }
    return false;
}

/**
 * True when virtual dispatch through @p method is an accepted
 * devirtualization point: the method or its class is `final`, or
 * either carries the wbsim::devirt_ok annotation.
 */
bool
isDevirtExempt(CXCursor method)
{
    Annotations m = annotationsOf(method);
    if (m.devirtOk || m.isFinal)
        return true;
    CXCursor cls = clang_getCursorSemanticParent(method);
    Annotations c = annotationsOf(cls);
    return c.devirtOk || c.isFinal;
}

// ---------------------------------------------------------------------
// TU traversal
// ---------------------------------------------------------------------

struct WalkContext
{
    Program *program = nullptr;
    std::vector<std::string> roots; //!< absolute project prefixes
    //! innermost enclosing project function definition (USR), if any
    std::string currentUsr;
    std::string currentQual;
    //! true when the current function's body facts are fresh (first
    //! definition seen) rather than a redundant re-parse
    bool recordBody = false;
};

bool
inProject(const WalkContext &ctx, const std::string &file)
{
    for (const std::string &root : ctx.roots) {
        if (file.rfind(root, 0) == 0)
            return true;
    }
    return false;
}

CXChildVisitResult walkVisitor(CXCursor, CXCursor, CXClientData);

void
walkChildren(CXCursor cursor, WalkContext &ctx)
{
    clang_visitChildren(cursor, walkVisitor, &ctx);
}

/** First FieldDecl/file-scope-VarDecl reference under an expr. */
struct HandleSearch
{
    CXCursor found;
    bool ok = false;
};

CXChildVisitResult
handleVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<HandleSearch *>(data);
    CXCursorKind kind = clang_getCursorKind(cursor);
    if (kind == CXCursor_MemberRefExpr || kind == CXCursor_DeclRefExpr) {
        CXCursor ref = clang_getCursorReferenced(cursor);
        CXCursorKind refKind = clang_getCursorKind(ref);
        if (refKind == CXCursor_FieldDecl
            || refKind == CXCursor_VarDecl) {
            out->found = ref;
            out->ok = true;
            return CXChildVisit_Break;
        }
    }
    return CXChildVisit_Recurse;
}

/** Collect enumerator references grouped by their enum's USR. */
struct EnumRefs
{
    std::map<std::string, std::set<std::string>> byEnum;
};

CXChildVisitResult
enumRefVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<EnumRefs *>(data);
    if (clang_getCursorKind(cursor) == CXCursor_DeclRefExpr) {
        CXCursor ref = clang_getCursorReferenced(cursor);
        if (clang_getCursorKind(ref) == CXCursor_EnumConstantDecl) {
            CXCursor enumDecl = clang_getCursorSemanticParent(ref);
            out->byEnum[str(clang_getCursorUSR(enumDecl))].insert(
                str(clang_getCursorSpelling(ref)));
        }
    }
    return CXChildVisit_Recurse;
}

/** Gather the label expression of each `case` under a switch. */
struct CaseLabels
{
    EnumRefs refs;
};

CXChildVisitResult
caseLabelExprVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    // Only the first child of a CaseStmt is the label expression;
    // stop after it so enumerators used in the case *body* (e.g.
    // `return Channel::X;`) do not count as table coverage.
    clang_visitChildren(cursor, enumRefVisitor, data);
    return CXChildVisit_Break;
}

CXChildVisitResult
switchVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto *out = static_cast<CaseLabels *>(data);
    if (clang_getCursorKind(cursor) == CXCursor_CaseStmt) {
        clang_visitChildren(cursor, caseLabelExprVisitor, &out->refs);
    }
    return CXChildVisit_Recurse;
}

/** If @p type (canonically) is an enum, return its decl's USR. */
std::string
enumUsrOfType(CXType type)
{
    CXType canon = clang_getCanonicalType(type);
    if (canon.kind != CXType_Enum)
        return "";
    return str(clang_getCursorUSR(clang_getTypeDeclaration(canon)));
}

void
noteNameTableNeed(WalkContext &ctx, CXCursor fn,
                  const std::string &spelling)
{
    bool nameLike = spelling.size() > 4
        && spelling.compare(spelling.size() - 4, 4, "Name") == 0;
    bool parseLike = spelling.rfind("parse", 0) == 0
        && spelling.size() > 5;
    if (!nameLike && !parseLike)
        return;

    std::string enumUsr;
    if (nameLike) {
        if (clang_Cursor_getNumArguments(fn) < 1)
            return;
        CXCursor arg0 = clang_Cursor_getArgument(fn, 0);
        enumUsr = enumUsrOfType(clang_getCursorType(arg0));
    } else {
        enumUsr = enumUsrOfType(clang_getCursorResultType(fn));
    }
    if (enumUsr.empty())
        return;

    // The enum may not have been visited yet (forward include
    // order); create the slot and let the EnumDecl visit fill it.
    ctx.program->enums[enumUsr].needsTable = true;
}

void
visitEnumDecl(WalkContext &ctx, CXCursor cursor,
              const std::string &file, unsigned line)
{
    EnumInfo &info = ctx.program->enums[str(clang_getCursorUSR(cursor))];
    if (info.name.empty()) {
        info.name = str(clang_getCursorSpelling(cursor));
        info.file = file;
        info.line = line;
    }
    clang_visitChildren(
        cursor,
        [](CXCursor c, CXCursor, CXClientData data) {
            if (clang_getCursorKind(c) == CXCursor_EnumConstantDecl) {
                static_cast<EnumInfo *>(data)->enumerators.insert(
                    str(clang_getCursorSpelling(c)));
            }
            return CXChildVisit_Continue;
        },
        &info);
}

void
visitCall(WalkContext &ctx, CXCursor cursor, const std::string &file,
          unsigned line)
{
    Func &fn = ctx.program->funcs[ctx.currentUsr];
    CXCursor callee = clang_getCursorReferenced(cursor);

    if (clang_Cursor_isNull(callee)
        || clang_isInvalid(clang_getCursorKind(callee))) {
        // Dependent call in a template pattern: fall back to the
        // spelled member name for the allocation check.
        std::string spelling = str(clang_getCursorSpelling(cursor));
        if (ctx.recordBody
            && allocatingMembers().count(spelling) != 0) {
            fn.allocs.push_back({file, line, spelling + " (dependent)"});
        }
        return;
    }
    if (!isFunctionKind(clang_getCursorKind(callee)))
        return;

    std::string calleeUsr = functionUsr(callee);
    std::string spelling = str(clang_getCursorSpelling(callee));

    if (ctx.recordBody) {
        if (isAllocatingCallee(callee, calleeUsr, spelling))
            fn.allocs.push_back({file, line, qualifiedName(callee)});

        if (clang_CXXMethod_isVirtual(callee) != 0
            && clang_Cursor_isDynamicCall(cursor) != 0
            && !isDevirtExempt(callee)) {
            fn.virtuals.push_back({file, line, qualifiedName(callee)});
        }

        fn.callees.insert(calleeUsr);
    }

    // WL-PUB-UNIQUE: a MetricsRegistry publish call. Tracked for
    // every project body (not only hot ones), deduped by site.
    if ((spelling == "add" || spelling == "set" || spelling == "sample")
        && str(clang_getCursorSpelling(
               clang_getCursorSemanticParent(callee)))
            == "MetricsRegistry"
        && clang_Cursor_getNumArguments(cursor) >= 1) {
        HandleSearch search;
        CXCursor arg0 = clang_Cursor_getArgument(cursor, 0);
        clang_visitChildren(arg0, handleVisitor, &search);
        if (!search.ok) {
            // The argument may itself be the reference.
            handleVisitor(arg0, cursor, &search);
        }
        if (search.ok) {
            std::string handleUsr = str(clang_getCursorUSR(search.found));
            if (!handleUsr.empty()) {
                std::ostringstream key;
                key << file << ":" << line;
                ctx.program->publishes[handleUsr].emplace(
                    key.str(),
                    PublishSite{file, line, ctx.currentQual,
                                str(clang_getCursorSpelling(
                                    search.found))});
            }
        }
    }
}

void
visitFunctionDecl(WalkContext &ctx, CXCursor cursor,
                  const std::string &file, unsigned line)
{
    std::string usr = functionUsr(cursor);
    if (usr.empty())
        return;
    Func &fn = ctx.program->funcs[usr];

    Annotations attrs = annotationsOf(cursor);
    fn.hot = fn.hot || attrs.hot;
    fn.cold = fn.cold || attrs.cold;
    if (fn.qual.empty())
        fn.qual = qualifiedName(cursor);
    if (fn.file.empty() || (!fn.defined && clang_isCursorDefinition(cursor))) {
        fn.file = file;
        fn.line = line;
    }

    noteNameTableNeed(ctx, cursor, str(clang_getCursorSpelling(cursor)));

    if (!clang_isCursorDefinition(cursor))
        return;

    // Each body is analyzed once; inline functions reappear in every
    // TU that includes their header.
    bool fresh = !fn.bodyDone;
    fn.bodyDone = true;
    fn.defined = true;

    std::string prevUsr = ctx.currentUsr;
    std::string prevQual = ctx.currentQual;
    bool prevRecord = ctx.recordBody;
    ctx.currentUsr = usr;
    ctx.currentQual = fn.qual;
    ctx.recordBody = fresh;
    walkChildren(cursor, ctx);
    ctx.currentUsr = prevUsr;
    ctx.currentQual = prevQual;
    ctx.recordBody = prevRecord;
}

CXChildVisitResult
walkVisitor(CXCursor cursor, CXCursor, CXClientData data)
{
    auto &ctx = *static_cast<WalkContext *>(data);
    CXCursorKind kind = clang_getCursorKind(cursor);

    // Containers: always descend.
    switch (kind) {
      case CXCursor_Namespace:
      case CXCursor_ClassDecl:
      case CXCursor_StructDecl:
      case CXCursor_ClassTemplate:
      case CXCursor_ClassTemplatePartialSpecialization:
      case CXCursor_UnexposedDecl: // extern "C", etc.
      case CXCursor_LinkageSpec:
        return CXChildVisit_Recurse;
      default:
        break;
    }

    std::string file;
    unsigned line = 0;
    cursorLocation(cursor, file, line);
    bool project = inProject(ctx, file);

    if (isFunctionKind(kind)) {
        if (!project)
            return CXChildVisit_Continue;
        visitFunctionDecl(ctx, cursor, file, line);
        return CXChildVisit_Continue;
    }

    if (kind == CXCursor_EnumDecl) {
        if (project && clang_isCursorDefinition(cursor))
            visitEnumDecl(ctx, cursor, file, line);
        return CXChildVisit_Continue;
    }

    if (kind == CXCursor_VarDecl && ctx.currentUsr.empty()) {
        // File-scope variable: a candidate name table (WL-ENUM-TABLE)
        // when its initializer mentions enumerators.
        if (project) {
            EnumRefs refs;
            clang_visitChildren(cursor, enumRefVisitor, &refs);
            for (auto &[enumUsr, covered] : refs.byEnum) {
                ctx.program->coverage[enumUsr].push_back(
                    {file, line, str(clang_getCursorSpelling(cursor)),
                     covered});
            }
        }
        return CXChildVisit_Continue;
    }

    // Inside a function body.
    if (!ctx.currentUsr.empty() && project) {
        if (kind == CXCursor_CallExpr) {
            visitCall(ctx, cursor, file, line);
            walkChildren(cursor, ctx); // nested calls and lambdas
            return CXChildVisit_Continue;
        }
        if (kind == CXCursor_CXXNewExpr && ctx.recordBody) {
            ctx.program->funcs[ctx.currentUsr].allocs.push_back(
                {file, line, "operator new"});
            return CXChildVisit_Recurse;
        }
        if (kind == CXCursor_CXXDeleteExpr && ctx.recordBody) {
            ctx.program->funcs[ctx.currentUsr].allocs.push_back(
                {file, line, "operator delete"});
            return CXChildVisit_Recurse;
        }
        if (kind == CXCursor_SwitchStmt && ctx.recordBody) {
            CaseLabels labels;
            clang_visitChildren(cursor, switchVisitor, &labels);
            for (auto &[enumUsr, covered] : labels.refs.byEnum) {
                ctx.program->coverage[enumUsr].push_back(
                    {file, line, ctx.currentQual, covered});
            }
            // fall through to recurse for nested calls
        }
    }

    return CXChildVisit_Recurse;
}

// ---------------------------------------------------------------------
// Diagnostics, baseline, rules
// ---------------------------------------------------------------------

struct Diagnostic
{
    std::string rule;
    std::string file;
    unsigned line = 0;
    std::string entity;
    std::string detail;
    std::string message;
};

std::string
baseName(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string
diagKey(const Diagnostic &d)
{
    return d.rule + "|" + baseName(d.file) + "|" + d.entity + "|"
        + d.detail;
}

/** Glob match supporting '*' only (enough for baseline entries). */
bool
globMatch(const char *pattern, const char *text)
{
    if (*pattern == '\0')
        return *text == '\0';
    if (*pattern == '*') {
        for (const char *t = text;; ++t) {
            if (globMatch(pattern + 1, t))
                return true;
            if (*t == '\0')
                return false;
        }
    }
    return *pattern == *text && globMatch(pattern + 1, text + 1);
}

struct Baseline
{
    std::vector<std::string> patterns;
    std::vector<bool> used;

    bool
    matches(const std::string &key)
    {
        for (std::size_t i = 0; i < patterns.size(); ++i) {
            if (globMatch(patterns[i].c_str(), key.c_str())) {
                used[i] = true;
                return true;
            }
        }
        return false;
    }
};

bool
loadBaseline(const std::string &path, Baseline &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string lineText;
    while (std::getline(in, lineText)) {
        std::size_t start = lineText.find_first_not_of(" \t");
        if (start == std::string::npos || lineText[start] == '#')
            continue;
        std::size_t end = lineText.find_last_not_of(" \t\r");
        out.patterns.push_back(lineText.substr(start, end - start + 1));
        out.used.push_back(false);
    }
    return true;
}

/**
 * Walk the hot closure and turn recorded body facts into
 * diagnostics. Traversal enters only project-defined functions and
 * stops at wbsim::cold ones.
 */
void
evaluateHotRules(const Program &program, std::vector<Diagnostic> &out)
{
    for (const auto &[rootUsr, root] : program.funcs) {
        if (!root.hot)
            continue;
        std::vector<const std::string *> stack{&rootUsr};
        std::set<std::string> visited{rootUsr};
        while (!stack.empty()) {
            const std::string &usr = *stack.back();
            stack.pop_back();
            auto it = program.funcs.find(usr);
            if (it == program.funcs.end())
                continue;
            const Func &fn = it->second;
            if (fn.cold)
                continue;

            std::string via = fn.qual == root.qual
                ? "hot function '" + root.qual + "'"
                : "'" + fn.qual + "' (reached from hot '" + root.qual
                    + "')";
            for (const BodySite &site : fn.allocs) {
                out.push_back({"WL-HOT-ALLOC", site.file, site.line,
                               fn.qual, site.detail,
                               "allocating call to '" + site.detail
                                   + "' in " + via});
            }
            for (const BodySite &site : fn.virtuals) {
                out.push_back({"WL-HOT-VIRTUAL", site.file, site.line,
                               fn.qual, site.detail,
                               "virtual dispatch to '" + site.detail
                                   + "' in " + via
                                   + "; mark the interface "
                                     "wbsim::devirt_ok or make the "
                                     "target final"});
            }
            for (const std::string &callee : fn.callees) {
                if (visited.insert(callee).second) {
                    auto cit = program.funcs.find(callee);
                    if (cit != program.funcs.end() && cit->second.defined)
                        stack.push_back(&cit->first);
                }
            }
        }
    }
}

void
evaluateEnumRule(const Program &program, std::vector<Diagnostic> &out)
{
    for (const auto &[usr, info] : program.enums) {
        if (!info.needsTable || info.enumerators.empty())
            continue;
        auto cov = program.coverage.find(usr);
        const Coverage *best = nullptr;
        std::size_t bestCount = 0;
        if (cov != program.coverage.end()) {
            for (const Coverage &candidate : cov->second) {
                std::size_t n = 0;
                for (const std::string &e : candidate.covered)
                    n += info.enumerators.count(e);
                if (best == nullptr || n > bestCount) {
                    best = &candidate;
                    bestCount = n;
                }
            }
        }
        if (best == nullptr) {
            out.push_back({"WL-ENUM-TABLE", info.file, info.line,
                           info.name, "no-table",
                           "enum '" + info.name
                               + "' has a *Name()/parse*() mapping but "
                                 "no switch or name table covers its "
                                 "enumerators"});
            continue;
        }
        std::vector<std::string> missing;
        for (const std::string &e : info.enumerators) {
            if (best->covered.count(e) == 0)
                missing.push_back(e);
        }
        if (missing.empty())
            continue;
        std::string joined;
        for (const std::string &m : missing)
            joined += (joined.empty() ? "" : ",") + m;
        out.push_back({"WL-ENUM-TABLE", best->file, best->line,
                       best->entity, info.name + ":" + joined,
                       "table '" + best->entity + "' for enum '"
                           + info.name + "' misses enumerator(s): "
                           + joined});
    }
}

void
evaluatePublishRule(const Program &program, std::vector<Diagnostic> &out)
{
    for (const auto &[usr, sites] : program.publishes) {
        if (sites.size() <= 1)
            continue;
        std::string where;
        for (const auto &[key, site] : sites) {
            where += (where.empty() ? "" : ", ") + baseName(site.file)
                + ":" + std::to_string(site.line);
        }
        for (const auto &[key, site] : sites) {
            out.push_back({"WL-PUB-UNIQUE", site.file, site.line,
                           site.entity, site.handle,
                           "metric handle '" + site.handle
                               + "' is published from "
                               + std::to_string(sites.size())
                               + " sites (" + where
                               + "); route all publishes through one "
                                 "helper"});
        }
    }
}

// ---------------------------------------------------------------------
// Parsing drivers
// ---------------------------------------------------------------------

struct Options
{
    std::string buildDir;              //!< -p (database mode)
    std::vector<std::string> tuFilters; //!< substrings; empty = all
    std::vector<std::string> roots;
    std::string baselinePath;
    std::string updateBaselinePath;
    std::vector<std::string> files;    //!< direct mode TUs
    std::vector<std::string> clangArgs; //!< direct mode args after --
    bool verbose = false;
};

int parseIssues = 0;

void
reportTuDiagnostics(CXTranslationUnit tu, const std::string &name,
                    bool verbose)
{
    unsigned n = clang_getNumDiagnostics(tu);
    for (unsigned i = 0; i < n; ++i) {
        CXDiagnostic diag = clang_getDiagnostic(tu, i);
        CXDiagnosticSeverity sev = clang_getDiagnosticSeverity(diag);
        if (sev >= CXDiagnostic_Error) {
            ++parseIssues;
            if (parseIssues <= 20 || verbose) {
                std::string text = str(clang_formatDiagnostic(
                    diag, clang_defaultDiagnosticDisplayOptions()));
                std::fprintf(stderr, "wbsim-lint: [parse] %s: %s\n",
                             name.c_str(), text.c_str());
            }
        }
        clang_disposeDiagnostic(diag);
    }
}

bool
analyzeTu(CXIndex index, WalkContext &ctx, const char *filename,
          const std::vector<const char *> &argv, bool fullArgv,
          bool verbose)
{
    CXTranslationUnit tu = nullptr;
    unsigned flags = CXTranslationUnit_KeepGoing;
    CXErrorCode err = fullArgv
        ? clang_parseTranslationUnit2FullArgv(
              index, filename, argv.data(),
              static_cast<int>(argv.size()), nullptr, 0, flags, &tu)
        : clang_parseTranslationUnit2(
              index, filename, argv.data(),
              static_cast<int>(argv.size()), nullptr, 0, flags, &tu);
    if (err != CXError_Success || tu == nullptr) {
        std::fprintf(stderr,
                     "wbsim-lint: failed to parse '%s' (error %d)\n",
                     filename != nullptr ? filename : "<db>",
                     static_cast<int>(err));
        ++parseIssues;
        return false;
    }
    reportTuDiagnostics(
        tu, filename != nullptr ? filename : "<db>", verbose);
    clang_visitChildren(clang_getTranslationUnitCursor(tu), walkVisitor,
                        &ctx);
    clang_disposeTranslationUnit(tu);
    return true;
}

bool
runDatabaseMode(CXIndex index, const Options &opts, WalkContext &ctx)
{
    CXCompilationDatabase_Error dbErr = CXCompilationDatabase_NoError;
    CXCompilationDatabase db = clang_CompilationDatabase_fromDirectory(
        opts.buildDir.c_str(), &dbErr);
    if (dbErr != CXCompilationDatabase_NoError) {
        std::fprintf(stderr,
                     "wbsim-lint: no compile_commands.json in '%s'\n",
                     opts.buildDir.c_str());
        return false;
    }
    CXCompileCommands commands =
        clang_CompilationDatabase_getAllCompileCommands(db);
    unsigned n = clang_CompileCommands_getSize(commands);
    unsigned parsed = 0;
    for (unsigned i = 0; i < n; ++i) {
        CXCompileCommand command =
            clang_CompileCommands_getCommand(commands, i);
        std::string file = str(clang_CompileCommand_getFilename(command));
        if (!opts.tuFilters.empty()) {
            bool keep = false;
            for (const std::string &f : opts.tuFilters)
                keep = keep || file.find(f) != std::string::npos;
            if (!keep)
                continue;
        }

        std::string dir = str(clang_CompileCommand_getDirectory(command));
        if (!dir.empty() && chdir(dir.c_str()) != 0) {
            std::fprintf(stderr, "wbsim-lint: cannot chdir to '%s'\n",
                         dir.c_str());
            ++parseIssues;
            continue;
        }

        unsigned nargs = clang_CompileCommand_getNumArgs(command);
        std::vector<std::string> args;
        args.reserve(nargs);
        for (unsigned a = 0; a < nargs; ++a)
            args.push_back(str(clang_CompileCommand_getArg(command, a)));
        std::vector<const char *> argv;
        argv.reserve(args.size());
        for (const std::string &a : args)
            argv.push_back(a.c_str());

        if (opts.verbose)
            std::fprintf(stderr, "wbsim-lint: parsing %s\n",
                         file.c_str());
        analyzeTu(index, ctx, nullptr, argv, /*fullArgv=*/true,
                  opts.verbose);
        ++parsed;
    }
    clang_CompileCommands_dispose(commands);
    clang_CompilationDatabase_dispose(db);
    if (parsed == 0) {
        std::fprintf(stderr,
                     "wbsim-lint: no translation units matched\n");
        return false;
    }
    if (opts.verbose)
        std::fprintf(stderr, "wbsim-lint: parsed %u TUs\n", parsed);
    return true;
}

bool
runDirectMode(CXIndex index, const Options &opts, WalkContext &ctx)
{
    std::vector<const char *> argv;
    argv.reserve(opts.clangArgs.size());
    for (const std::string &a : opts.clangArgs)
        argv.push_back(a.c_str());
    bool any = false;
    for (const std::string &file : opts.files) {
        any = analyzeTu(index, ctx, file.c_str(), argv,
                        /*fullArgv=*/false, opts.verbose)
            || any;
    }
    return any;
}

std::string
absolutePath(const std::string &path)
{
    if (!path.empty() && path[0] == '/')
        return path;
    char buf[4096];
    if (getcwd(buf, sizeof buf) == nullptr)
        return path;
    return std::string(buf) + "/" + path;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: wbsim_lint -p <build-dir> --root <dir> [options]\n"
        "       wbsim_lint --root <dir> [options] file.cc... -- "
        "<clang args>\n"
        "options:\n"
        "  -p <dir>               load <dir>/compile_commands.json\n"
        "  --root <dir>           project root (repeatable); only\n"
        "                         code under a root is analyzed\n"
        "  --tu-filter <substr>   only parse TUs whose path contains\n"
        "                         <substr> (repeatable)\n"
        "  --baseline <file>      suppress diagnostics matching keys\n"
        "  --update-baseline <f>  write current diagnostic keys to f\n"
        "  --verbose              narrate parsing\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    bool afterDashes = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (afterDashes) {
            opts.clangArgs.push_back(arg);
        } else if (arg == "--") {
            afterDashes = true;
        } else if (arg == "-p" && i + 1 < argc) {
            opts.buildDir = argv[++i];
        } else if (arg == "--root" && i + 1 < argc) {
            opts.roots.push_back(absolutePath(argv[++i]));
        } else if (arg == "--tu-filter" && i + 1 < argc) {
            opts.tuFilters.push_back(argv[++i]);
        } else if (arg == "--baseline" && i + 1 < argc) {
            opts.baselinePath = argv[++i];
        } else if (arg == "--update-baseline" && i + 1 < argc) {
            opts.updateBaselinePath = argv[++i];
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "wbsim-lint: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else {
            opts.files.push_back(absolutePath(arg));
        }
    }
    if (opts.roots.empty() || (opts.buildDir.empty() && opts.files.empty()))
        return usage();

    // Normalize roots through realpath-style absolute form; cursor
    // locations come back as real paths.
    Baseline baseline;
    if (!opts.baselinePath.empty()) {
        std::string path = absolutePath(opts.baselinePath);
        if (!loadBaseline(path, baseline)) {
            std::fprintf(stderr,
                         "wbsim-lint: cannot read baseline '%s'\n",
                         path.c_str());
            return 2;
        }
    }
    std::string updatePath = opts.updateBaselinePath.empty()
        ? ""
        : absolutePath(opts.updateBaselinePath);

    Program program;
    WalkContext ctx;
    ctx.program = &program;
    ctx.roots = opts.roots;

    CXIndex index = clang_createIndex(/*excludePCH=*/0,
                                      /*displayDiagnostics=*/0);
    bool ok = opts.buildDir.empty()
        ? runDirectMode(index, opts, ctx)
        : runDatabaseMode(index, opts, ctx);
    clang_disposeIndex(index);
    if (!ok)
        return 2;

    std::vector<Diagnostic> diags;
    evaluateHotRules(program, diags);
    evaluateEnumRule(program, diags);
    evaluatePublishRule(program, diags);

    // Dedup (a site can be reachable from several hot roots and a
    // header parses in many TUs), then order for stable output.
    std::map<std::string, Diagnostic> unique;
    for (Diagnostic &d : diags) {
        unique.emplace(d.file + ":" + std::to_string(d.line) + ":"
                           + d.rule + ":" + d.detail,
                       std::move(d));
    }

    if (!updatePath.empty()) {
        std::ofstream out(updatePath);
        out << "# wbsim-lint baseline: one '|'-separated key per "
               "line, '*' wildcards.\n"
            << "# key = RULE|file-basename|entity|detail\n";
        std::set<std::string> keys;
        for (const auto &[sortKey, d] : unique)
            keys.insert(diagKey(d));
        for (const std::string &k : keys)
            out << k << "\n";
        std::fprintf(stderr, "wbsim-lint: wrote %zu baseline keys\n",
                     keys.size());
    }

    unsigned reported = 0, suppressed = 0;
    for (const auto &[sortKey, d] : unique) {
        if (baseline.matches(diagKey(d))) {
            ++suppressed;
            continue;
        }
        ++reported;
        std::printf("%s:%u: error: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
    }
    for (std::size_t i = 0; i < baseline.patterns.size(); ++i) {
        if (!baseline.used[i]) {
            std::fprintf(stderr,
                         "wbsim-lint: note: stale baseline entry: %s\n",
                         baseline.patterns[i].c_str());
        }
    }
    std::printf(
        "wbsim-lint: %u diagnostic(s), %u baselined, %d parse "
        "issue(s)\n",
        reported, suppressed, parseIssues);
    return reported == 0 ? 0 : 1;
}
