/**
 * @file
 * WL-HOT-VIRTUAL: no undocumented virtual dispatch in hot closures.
 *
 * Dispatch through a `final` method/class or one carrying
 * wbsim::devirt_ok (the policy interfaces the engine monomorphises,
 * DESIGN.md §9) was already filtered out by the walk; whatever
 * reached the fact base is an undocumented indirect call on a hot
 * path.
 */

#include "../lint_core.hh"

namespace
{

using namespace wbsim_lint;

bool
isHotRoot(const Func &fn)
{
    return fn.hot;
}

std::string
via(const Func &root, const Func &fn)
{
    return fn.qual == root.qual
        ? "hot function '" + root.qual + "'"
        : "'" + fn.qual + "' (reached from hot '" + root.qual + "')";
}

void
visit(const Func &root, const Func &fn, std::vector<Diagnostic> &out)
{
    for (const BodySite &site : fn.virtuals) {
        out.push_back({"WL-HOT-VIRTUAL", site.file, site.line, fn.qual,
                       site.detail,
                       "virtual dispatch to '" + site.detail + "' in "
                           + via(root, fn)
                           + "; mark the interface wbsim::devirt_ok "
                             "or make the target final"});
    }
}

class HotVirtualRule final : public Rule
{
  public:
    const char *id() const override { return "WL-HOT-VIRTUAL"; }
    const char *summary() const override
    {
        return "hot-path virtual dispatch needs a devirt_ok contract";
    }
    void evaluate(const Program &program,
                  std::vector<Diagnostic> &out) const override
    {
        forEachReachable(program, isHotRoot, visit, out);
    }
};

WBSIM_LINT_REGISTER_RULE(HotVirtualRule);

} // namespace
