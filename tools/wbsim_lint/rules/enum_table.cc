/**
 * @file
 * WL-ENUM-TABLE: name tables must cover their enum completely.
 *
 * An enum with a `*Name()` or `parse*()` mapping gets its
 * best-covering switch or table initializer compared against the
 * full enumerator set; missing entries are listed so adding an
 * enumerator without extending the table fails the lint run instead
 * of silently printing "?".
 */

#include "../lint_core.hh"

namespace
{

using namespace wbsim_lint;

class EnumTableRule final : public Rule
{
  public:
    const char *id() const override { return "WL-ENUM-TABLE"; }
    const char *summary() const override
    {
        return "enum name tables must cover every enumerator";
    }
    void evaluate(const Program &program,
                  std::vector<Diagnostic> &out) const override
    {
        for (const auto &[usr, info] : program.enums) {
            if (!info.needsTable || info.enumerators.empty())
                continue;
            auto cov = program.coverage.find(usr);
            const Coverage *best = nullptr;
            std::size_t bestCount = 0;
            if (cov != program.coverage.end()) {
                for (const Coverage &candidate : cov->second) {
                    std::size_t n = 0;
                    for (const std::string &e : candidate.covered)
                        n += info.enumerators.count(e);
                    if (best == nullptr || n > bestCount) {
                        best = &candidate;
                        bestCount = n;
                    }
                }
            }
            if (best == nullptr) {
                out.push_back(
                    {"WL-ENUM-TABLE", info.file, info.line, info.name,
                     "no-table",
                     "enum '" + info.name
                         + "' has a *Name()/parse*() mapping but no "
                           "switch or name table covers its "
                           "enumerators"});
                continue;
            }
            std::vector<std::string> missing;
            for (const std::string &e : info.enumerators) {
                if (best->covered.count(e) == 0)
                    missing.push_back(e);
            }
            if (missing.empty())
                continue;
            std::string joined;
            for (const std::string &m : missing)
                joined += (joined.empty() ? "" : ",") + m;
            out.push_back({"WL-ENUM-TABLE", best->file, best->line,
                           best->entity, info.name + ":" + joined,
                           "table '" + best->entity + "' for enum '"
                               + info.name
                               + "' misses enumerator(s): " + joined});
        }
    }
};

WBSIM_LINT_REGISTER_RULE(EnumTableRule);

} // namespace
