/**
 * @file
 * WL-HOT-ALLOC: no allocation anywhere in a hot-path closure.
 *
 * Roots are WBSIM_HOT functions; traversal stops at WBSIM_COLD (the
 * naive-reference cross-check paths allocate freely). The walk
 * already recorded every allocating call site (std container
 * growers, malloc-family, operator new) per function; this rule just
 * attributes each to the hot root(s) that reach it.
 */

#include "../lint_core.hh"

namespace
{

using namespace wbsim_lint;

bool
isHotRoot(const Func &fn)
{
    return fn.hot;
}

std::string
via(const Func &root, const Func &fn)
{
    return fn.qual == root.qual
        ? "hot function '" + root.qual + "'"
        : "'" + fn.qual + "' (reached from hot '" + root.qual + "')";
}

void
visit(const Func &root, const Func &fn, std::vector<Diagnostic> &out)
{
    for (const BodySite &site : fn.allocs) {
        out.push_back({"WL-HOT-ALLOC", site.file, site.line, fn.qual,
                       site.detail,
                       "allocating call to '" + site.detail + "' in "
                           + via(root, fn)});
    }
}

class HotAllocRule final : public Rule
{
  public:
    const char *id() const override { return "WL-HOT-ALLOC"; }
    const char *summary() const override
    {
        return "hot-path closures must not allocate";
    }
    void evaluate(const Program &program,
                  std::vector<Diagnostic> &out) const override
    {
        forEachReachable(program, isHotRoot, visit, out);
    }
};

WBSIM_LINT_REGISTER_RULE(HotAllocRule);

} // namespace
