/**
 * @file
 * WL-LOCK-ORDER: every nested acquire follows the declared order.
 *
 * WBSIM_ACQUIRES_BEFORE edges on mutex members form the declared
 * hierarchy. Observed nestings come from two sources: direct
 * lock-while-held edges inside one body, and calls made under a lock
 * into functions whose transitive closure acquires further locks.
 * Each observed (outer, inner) pair must be reachable along declared
 * edges; an inverted pair (the declared order runs inner → outer) is
 * a latent deadlock, an unrelated pair is an undeclared nesting the
 * hierarchy must be extended to cover, and outer == inner is a
 * self-deadlock. The declared graph itself must also be acyclic, so
 * the annotations stay a consistent total story.
 */

#include "../lint_core.hh"

#include <map>
#include <set>

namespace
{

using namespace wbsim_lint;

/** Transitive reachability over the declared acquires-before graph. */
class DeclaredOrder
{
  public:
    explicit DeclaredOrder(const Program &program)
    {
        for (const DeclaredEdge &edge : program.declaredEdges)
            edges_[edge.from].insert(edge.to);
    }

    bool
    path(const std::string &from, const std::string &to) const
    {
        std::set<std::string> visited;
        return dfs(from, to, visited);
    }

    /** First capability found on a declared cycle, if any. */
    bool
    onCycle(const std::string &start) const
    {
        std::set<std::string> visited;
        auto it = edges_.find(start);
        if (it == edges_.end())
            return false;
        for (const std::string &next : it->second) {
            if (next == start || dfs(next, start, visited))
                return true;
        }
        return false;
    }

  private:
    bool
    dfs(const std::string &from, const std::string &to,
        std::set<std::string> &visited) const
    {
        if (from == to)
            return true;
        if (!visited.insert(from).second)
            return false;
        auto it = edges_.find(from);
        if (it == edges_.end())
            return false;
        for (const std::string &next : it->second) {
            if (dfs(next, to, visited))
                return true;
        }
        return false;
    }

    std::map<std::string, std::set<std::string>> edges_;
};

/** Capabilities a function's transitive closure acquires. */
class TransitiveAcquires
{
  public:
    explicit TransitiveAcquires(const Program &program)
        : program_(program)
    {
    }

    const std::set<std::string> &
    of(const std::string &usr)
    {
        auto memo = memo_.find(usr);
        if (memo != memo_.end())
            return memo->second;
        // Seed the memo before recursing so call cycles terminate
        // (they see the partial set — the usual fixpoint
        // approximation). std::map node references stay valid across
        // the recursive inserts.
        std::set<std::string> &result = memo_[usr];
        auto it = program_.funcs.find(usr);
        if (it == program_.funcs.end())
            return result;
        result.insert(it->second.acquired.begin(),
                      it->second.acquired.end());
        for (const std::string &callee : it->second.callees) {
            // Copy: `of(callee)` may alias `result` on a recursive
            // call chain, and inserting a set into itself while
            // iterating it is undefined.
            std::set<std::string> sub = of(callee);
            result.insert(sub.begin(), sub.end());
        }
        return result;
    }

  private:
    const Program &program_;
    std::map<std::string, std::set<std::string>> memo_;
};

void
checkEdge(const DeclaredOrder &declared, const std::string &file,
          unsigned line, const std::string &entity,
          const std::string &from, const std::string &to,
          const std::string &how, std::vector<Diagnostic> &out)
{
    if (from == to) {
        out.push_back({"WL-LOCK-ORDER", file, line, entity,
                       from + "->" + to,
                       "'" + entity + "' re-acquires '" + from
                           + "' while already holding it" + how
                           + " (self-deadlock)"});
        return;
    }
    if (declared.path(from, to))
        return;
    if (declared.path(to, from)) {
        out.push_back(
            {"WL-LOCK-ORDER", file, line, entity, from + "->" + to,
             "'" + entity + "' acquires '" + to + "' while holding '"
                 + from + "'" + how
                 + ", inverting the declared order ('" + to
                 + "' is declared before '" + from + "')"});
        return;
    }
    out.push_back(
        {"WL-LOCK-ORDER", file, line, entity, from + "->" + to,
         "undeclared nesting: '" + entity + "' acquires '" + to
             + "' while holding '" + from + "'" + how
             + "; declare WBSIM_ACQUIRES_BEFORE on the outer mutex"});
}

class LockOrderRule final : public Rule
{
  public:
    const char *id() const override { return "WL-LOCK-ORDER"; }
    const char *summary() const override
    {
        return "nested lock acquires follow the declared hierarchy";
    }
    void evaluate(const Program &program,
                  std::vector<Diagnostic> &out) const override
    {
        DeclaredOrder declared(program);

        // The declared graph itself must be acyclic.
        for (const DeclaredEdge &edge : program.declaredEdges) {
            if (edge.from == edge.to || declared.onCycle(edge.from)) {
                out.push_back(
                    {"WL-LOCK-ORDER", edge.file, edge.line, edge.from,
                     "declared-cycle",
                     "declared order starting at '" + edge.from
                         + "' is cyclic; acquires_before edges must "
                           "form a DAG"});
            }
        }

        for (const LockEdge &edge : program.lockEdges) {
            checkEdge(declared, edge.file, edge.line, edge.entity,
                      edge.from, edge.to, "", out);
        }

        TransitiveAcquires closure(program);
        for (const HeldCall &call : program.heldCalls) {
            const std::set<std::string> acquires =
                closure.of(call.calleeUsr);
            if (acquires.empty())
                continue;
            std::string how = " (via call to '" + call.calleeQual + "')";
            for (const std::string &held : call.held) {
                for (const std::string &to : acquires) {
                    checkEdge(declared, call.file, call.line,
                              call.entity, held, to, how, out);
                }
            }
        }
    }
};

WBSIM_LINT_REGISTER_RULE(LockOrderRule);

} // namespace
