/**
 * @file
 * WL-LOCK-GUARD: guarded members are touched only under their lock.
 *
 * The walk judged every touch of a WBSIM_GUARDED_BY member against
 * the lexical held-lock set (RAII holders, bare .lock()/.unlock(),
 * WBSIM_REQUIRES seeding) with ctor/dtor exemption, and recorded
 * every call into a WBSIM_REQUIRES function with whether the caller
 * holds the capability. This rule reports the failures:
 *
 *  - a guarded member touched with the capability neither held nor
 *    required — always an error, even for virtual (non-mutex)
 *    capabilities, which is exactly how single-driver state like the
 *    bus arbiter's pending set is fenced;
 *  - a call into a REQUIRES(m) function without holding m — checked
 *    only when m is a real mutex member, because virtual
 *    capabilities have no lock operation a caller could perform.
 */

#include "../lint_core.hh"

namespace
{

using namespace wbsim_lint;

class LockGuardRule final : public Rule
{
  public:
    const char *id() const override { return "WL-LOCK-GUARD"; }
    const char *summary() const override
    {
        return "guarded members are touched only with their "
               "capability held";
    }
    void evaluate(const Program &program,
                  std::vector<Diagnostic> &out) const override
    {
        for (const GuardedAccess &access : program.guardedAccesses) {
            if (access.ok)
                continue;
            out.push_back(
                {"WL-LOCK-GUARD", access.file, access.line,
                 access.entity, access.field,
                 "'" + access.field + "' (guarded by '" + access.cap
                     + "') touched in '" + access.entity
                     + "' without the capability held; lock it in an "
                       "enclosing scope or annotate the function "
                       "WBSIM_REQUIRES"});
        }
        for (const RequiresCall &call : program.requiresCalls) {
            if (call.ok)
                continue;
            auto cap = program.capabilities.find(call.cap);
            if (cap == program.capabilities.end()
                || !cap->second.lockable) {
                continue;
            }
            out.push_back(
                {"WL-LOCK-GUARD", call.file, call.line, call.entity,
                 call.callee,
                 "call to '" + call.callee + "' requires '" + call.cap
                     + "', which '" + call.entity
                     + "' does not hold"});
        }
    }
};

WBSIM_LINT_REGISTER_RULE(LockGuardRule);

} // namespace
