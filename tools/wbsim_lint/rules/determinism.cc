/**
 * @file
 * WL-DETERMINISM: reproducible closures stay reproducible.
 *
 * Roots are WBSIM_DETERMINISTIC and WBSIM_HOT functions (the
 * simulator core is the original determinism domain; the serve
 * encode/decode and figure-export paths opt in explicitly). Within a
 * root's closure — same traversal as the hot rules, stopping at
 * WBSIM_COLD — three fact kinds are errors:
 *
 *  - wall-clock reads (time(), chrono *_clock::now, gettimeofday…),
 *  - non-seeded randomness (rand family, std::random_device) and
 *    scheduling-dependent sleeps,
 *  - range-for over an unordered container, whose hash order can
 *    feed emitted bytes.
 *
 * WBSIM_NONDET_OK on a function exempts that function's *own body*
 * only; its callees remain in the closure, so an escape hatch cannot
 * silently whitelist a subtree.
 */

#include "../lint_core.hh"

namespace
{

using namespace wbsim_lint;

bool
isDetRoot(const Func &fn)
{
    return fn.deterministic || fn.hot;
}

std::string
via(const Func &root, const Func &fn)
{
    return fn.qual == root.qual
        ? "deterministic root '" + root.qual + "'"
        : "'" + fn.qual + "' (reached from deterministic root '"
            + root.qual + "')";
}

void
visit(const Func &root, const Func &fn, std::vector<Diagnostic> &out)
{
    if (fn.nondetOk)
        return;
    for (const BodySite &site : fn.nondet) {
        out.push_back(
            {"WL-DETERMINISM", site.file, site.line, fn.qual,
             site.detail,
             "nondeterministic call to '" + site.detail + "' in "
                 + via(root, fn)
                 + "; use the seeded util Rng / simulated time, or "
                   "annotate the function WBSIM_NONDET_OK with a "
                   "justification"});
    }
    for (const BodySite &site : fn.unorderedIters) {
        out.push_back(
            {"WL-DETERMINISM", site.file, site.line, fn.qual,
             site.detail,
             "iteration over an unordered container in "
                 + via(root, fn)
                 + "; hash order can feed emitted bytes — use an "
                   "ordered container or sort before iterating"});
    }
}

class DeterminismRule final : public Rule
{
  public:
    const char *id() const override { return "WL-DETERMINISM"; }
    const char *summary() const override
    {
        return "deterministic closures avoid clocks, raw RNG, and "
               "unordered iteration";
    }
    void evaluate(const Program &program,
                  std::vector<Diagnostic> &out) const override
    {
        forEachReachable(program, isDetRoot, visit, out);
    }
};

WBSIM_LINT_REGISTER_RULE(DeterminismRule);

} // namespace
