/**
 * @file
 * WL-PUB-UNIQUE: each metric handle has one publish site.
 *
 * A MetricsRegistry handle published from several places makes the
 * emitted stats stream depend on call interleaving; every handle's
 * add/set/sample calls must route through a single helper. The walk
 * grouped publish sites by handle USR (deduped by file:line); any
 * group larger than one is reported at every member site.
 */

#include "../lint_core.hh"

namespace
{

using namespace wbsim_lint;

class PubUniqueRule final : public Rule
{
  public:
    const char *id() const override { return "WL-PUB-UNIQUE"; }
    const char *summary() const override
    {
        return "metric handles are published from exactly one site";
    }
    void evaluate(const Program &program,
                  std::vector<Diagnostic> &out) const override
    {
        for (const auto &[usr, sites] : program.publishes) {
            if (sites.size() <= 1)
                continue;
            std::string where;
            for (const auto &[key, site] : sites) {
                where += (where.empty() ? "" : ", ")
                    + baseName(site.file) + ":"
                    + std::to_string(site.line);
            }
            for (const auto &[key, site] : sites) {
                out.push_back(
                    {"WL-PUB-UNIQUE", site.file, site.line,
                     site.entity, site.handle,
                     "metric handle '" + site.handle
                         + "' is published from "
                         + std::to_string(sites.size()) + " sites ("
                         + where
                         + "); route all publishes through one "
                           "helper"});
            }
        }
    }
};

WBSIM_LINT_REGISTER_RULE(PubUniqueRule);

} // namespace
