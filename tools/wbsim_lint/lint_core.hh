/**
 * @file
 * The wbsim-lint core: everything a rule plugin needs.
 *
 * The analyzer is split into three layers (DESIGN.md §10):
 *
 *  - this core: libclang parsing drivers, the AST walk that turns
 *    translation units into a merged, USR-keyed Program fact base
 *    (call graph, annotations, body sites, lock scopes, guarded
 *    accesses, declared lock-order edges), plus the shared
 *    diagnostic/baseline machinery;
 *  - rules/<name>.cc: one self-registering Rule per check, each a
 *    pure function from the Program to diagnostics;
 *  - main.cc: option parsing, rule selection, output.
 *
 * Rules never touch libclang: by the time evaluate() runs, every TU
 * has been disposed and all facts live in plain data structures, so
 * a rule is trivially unit-testable against a hand-built Program and
 * adding one cannot perturb the walk another rule depends on.
 */

#ifndef WBSIM_LINT_CORE_HH
#define WBSIM_LINT_CORE_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include <clang-c/Index.h>

namespace wbsim_lint
{

// ---------------------------------------------------------------------
// Small libclang helpers (used by the walk; exposed for tests)
// ---------------------------------------------------------------------

/** Take ownership of a CXString and return it as a std::string. */
std::string str(CXString s);

/** Expansion location of a cursor as (file, line). */
void cursorLocation(CXCursor cursor, std::string &file, unsigned &line);

bool isFunctionKind(CXCursorKind kind);

/**
 * The canonical identity of a function across translation units:
 * its USR, with template specializations folded back onto their
 * pattern so attributes written on the template cover every
 * instantiation.
 */
std::string functionUsr(CXCursor cursor);

/** "Class::name" when the semantic parent is a record, else "name". */
std::string qualifiedName(CXCursor cursor);

/** wbsim::* annotations present on one declaration cursor. */
struct Annotations
{
    bool hot = false;
    bool cold = false;
    bool devirtOk = false;
    bool isFinal = false;
    bool deterministic = false;
    bool nondetOk = false;
    /** Unresolved capability names from WBSIM_GUARDED_BY. */
    std::vector<std::string> guardedBy;
    /** Unresolved capability names from WBSIM_REQUIRES. */
    std::vector<std::string> requiresCaps;
    /** Unresolved capability names from WBSIM_ACQUIRES_BEFORE. */
    std::vector<std::string> acquiresBefore;
};

Annotations annotationsOf(CXCursor cursor);

// ---------------------------------------------------------------------
// Merged program model
// ---------------------------------------------------------------------

/** One would-be diagnostic inside a function body. */
struct BodySite
{
    std::string file;
    unsigned line = 0;
    std::string detail; //!< callee or handle, for messages and keys
};

/** Everything known about one function, merged across TUs. */
struct Func
{
    std::string qual;      //!< display name ("Class::method")
    std::string file;      //!< definition (or first decl) location
    unsigned line = 0;
    bool hot = false;          //!< wbsim::hot on any declaration
    bool cold = false;         //!< wbsim::cold on any declaration
    bool deterministic = false; //!< wbsim::deterministic declared
    bool nondetOk = false;     //!< wbsim::nondet_ok declared
    bool defined = false;  //!< body seen in some project TU
    bool bodyDone = false; //!< body facts already collected once
    /** Capabilities callers must hold (resolved "Record::member"). */
    std::set<std::string> needsCaps;
    /** Capabilities acquired somewhere in the body (resolved). */
    std::set<std::string> acquired;
    std::set<std::string> callees;   //!< USRs of resolved callees
    std::vector<BodySite> allocs;    //!< allocating calls in the body
    std::vector<BodySite> virtuals;  //!< virtual dispatches in body
    std::vector<BodySite> nondet;    //!< wall-clock / RNG / sleeps
    /** Range-for statements iterating an unordered container. */
    std::vector<BodySite> unorderedIters;
};

/** One enum that may need a complete name table. */
struct EnumInfo
{
    std::string name;
    std::string file;
    unsigned line = 0;
    std::set<std::string> enumerators;
    bool needsTable = false; //!< has a *Name()/parse*() mapping
};

/** One switch or table initializer that names enumerators of E. */
struct Coverage
{
    std::string file;
    unsigned line = 0;
    std::string entity; //!< enclosing function or variable
    std::set<std::string> covered;
};

/** One MetricsRegistry add/set/sample call on a handle field. */
struct PublishSite
{
    std::string file;
    unsigned line = 0;
    std::string entity;
    std::string handle; //!< handle field spelling
};

/** One capability named by the annotations. Lockable capabilities
 *  are mutex-typed members (the walk checks call sites against
 *  them); the rest are virtual disciplines (single-driver state)
 *  where only the member touches are gated. */
struct CapabilityInfo
{
    bool lockable = false;
    std::string file;
    unsigned line = 0;
};

/** One touch of a WBSIM_GUARDED_BY member, judged at walk time
 *  against the lexical held-lock set (WL-LOCK-GUARD). */
struct GuardedAccess
{
    std::string file;
    unsigned line = 0;
    std::string entity; //!< enclosing function
    std::string field;  //!< "Record::member" touched
    std::string cap;    //!< capability the field is guarded by
    bool ok = false;    //!< held, required, or ctor/dtor-exempt
};

/** One call to a WBSIM_REQUIRES function (WL-LOCK-GUARD; checked
 *  only when the capability is lockable). */
struct RequiresCall
{
    std::string file;
    unsigned line = 0;
    std::string entity; //!< calling function
    std::string callee; //!< callee display name
    std::string cap;
    bool ok = false;    //!< capability held or required by caller
};

/** One in-body nested acquire: @p to acquired while @p from was
 *  already held (WL-LOCK-ORDER). */
struct LockEdge
{
    std::string file;
    unsigned line = 0;
    std::string entity;
    std::string from;
    std::string to;
};

/** One call made while holding locks; combined with the callees'
 *  transitive acquire sets this yields the interprocedural
 *  nested-acquire edges (WL-LOCK-ORDER). */
struct HeldCall
{
    std::string file;
    unsigned line = 0;
    std::string entity;
    std::vector<std::string> held;
    std::string calleeUsr;
    std::string calleeQual;
};

/** One WBSIM_ACQUIRES_BEFORE declaration: @p from, when nested with
 *  @p to, is always the outer lock. */
struct DeclaredEdge
{
    std::string file;
    unsigned line = 0;
    std::string from;
    std::string to;
};

struct Program
{
    std::map<std::string, Func> funcs;          //!< by USR
    std::map<std::string, EnumInfo> enums;      //!< by USR
    std::map<std::string, std::vector<Coverage>> coverage; //!< enum USR
    //! handle USR -> site key "file:line" -> site
    std::map<std::string, std::map<std::string, PublishSite>> publishes;
    //! capability id "Record::member" -> lockability
    std::map<std::string, CapabilityInfo> capabilities;
    std::vector<GuardedAccess> guardedAccesses;
    std::vector<RequiresCall> requiresCalls;
    std::vector<LockEdge> lockEdges;
    std::vector<HeldCall> heldCalls;
    std::vector<DeclaredEdge> declaredEdges;
};

// ---------------------------------------------------------------------
// Diagnostics and baseline
// ---------------------------------------------------------------------

struct Diagnostic
{
    std::string rule;
    std::string file;
    unsigned line = 0;
    std::string entity;
    std::string detail;
    std::string message;
};

std::string baseName(const std::string &path);

/** Baseline key: RULE|file-basename|entity|detail. */
std::string diagKey(const Diagnostic &d);

/** Glob match supporting '*' only (enough for baseline entries). */
bool globMatch(const char *pattern, const char *text);

struct Baseline
{
    std::vector<std::string> patterns;
    std::vector<bool> used;

    bool matches(const std::string &key);
};

bool loadBaseline(const std::string &path, Baseline &out);

// ---------------------------------------------------------------------
// Rule plugins
// ---------------------------------------------------------------------

/**
 * One analysis pass. Implementations are stateless: evaluate() maps
 * the merged Program onto diagnostics and must be deterministic
 * (main dedups and sorts, but rules should not depend on it).
 */
class Rule
{
  public:
    virtual ~Rule() = default;
    /** Stable identifier, e.g. "WL-LOCK-GUARD" (baseline keys and
     *  --rules selection use it verbatim). */
    virtual const char *id() const = 0;
    /** One-line description for --list-rules. */
    virtual const char *summary() const = 0;
    virtual void evaluate(const Program &program,
                          std::vector<Diagnostic> &out) const = 0;
};

/** Every registered rule, sorted by id. */
const std::vector<const Rule *> &allRules();

/** Registers @p rule into allRules() from a static initializer. */
class RuleRegistrar
{
  public:
    explicit RuleRegistrar(const Rule *rule);
};

/** Define-and-register boilerplate for the rule sources. */
#define WBSIM_LINT_REGISTER_RULE(RuleType)                            \
    static const RuleType g_ruleInstance_##RuleType;                  \
    static const ::wbsim_lint::RuleRegistrar                          \
        g_ruleRegistrar_##RuleType(&g_ruleInstance_##RuleType)

/**
 * Walk the closure of every root function selected by @p isRoot and
 * call @p visit(root, fn) for each member. Traversal enters only
 * project-defined callees and stops at wbsim::cold functions — the
 * shared reachability used by the WL-HOT-* and WL-DETERMINISM rules.
 */
void forEachReachable(const Program &program,
                      bool (*isRoot)(const Func &),
                      void (*visit)(const Func &root, const Func &fn,
                                    std::vector<Diagnostic> &out),
                      std::vector<Diagnostic> &out);

// ---------------------------------------------------------------------
// Parsing drivers
// ---------------------------------------------------------------------

struct Options
{
    std::string buildDir;              //!< -p (database mode)
    std::vector<std::string> tuFilters; //!< substrings; empty = all
    std::vector<std::string> roots;
    std::string baselinePath;
    std::string updateBaselinePath;
    std::vector<std::string> files;    //!< direct mode TUs
    std::vector<std::string> clangArgs; //!< direct mode args after --
    std::vector<std::string> ruleIds;  //!< --rules selection; empty = all
    bool listRules = false;
    bool verbose = false;
};

/** Parse every selected TU and merge the facts into @p program.
 *  False when nothing could be parsed at all. */
bool collectProgram(const Options &opts, Program &program);

/** Parse errors seen across all TUs (reported in the summary). */
int parseIssueCount();

std::string absolutePath(const std::string &path);

} // namespace wbsim_lint

#endif // WBSIM_LINT_CORE_HH
