/**
 * @file
 * The wbsim-serve daemon: answer sweep requests over TCP (loopback)
 * or a Unix-domain socket until a client asks for shutdown or the
 * process receives SIGINT/SIGTERM.
 *
 * Quick start:
 *
 *     wbsim_serve --port=7741 --workers=8 --grid-cache-mb=512 &
 *     # ... clients connect with serve::ServeClient or
 *     #     design_space_explorer --server=7741 ...
 */

#include <pthread.h>
#include <signal.h>

#include <iostream>
#include <thread>

#include "harness/experiment.hh"
#include "serve/server.hh"
#include "util/logging.hh"
#include "util/options.hh"

int
main(int argc, char **argv)
{
    using namespace wbsim;
    using namespace wbsim::serve;

    Options options;
    options.declare("port", "TCP port on 127.0.0.1 (0 = ephemeral)",
                    "7741");
    options.declare("unix", "serve on this Unix socket path instead",
                    "");
    options.declare("workers",
                    "simulation worker threads (0 = all cores)", "0");
    options.declare("queue", "admission queue capacity, in cells",
                    "1024");
    options.declare("discipline", "dispatch discipline: fcfs|priority",
                    "fcfs");
    options.declare("store-mb",
                    "result store byte budget, MB (0 = unbounded)",
                    "256");
    options.declare("store-shards", "result store shard count", "16");
    options.declare("grid-cache-mb",
                    "grid cache byte budget, MB (0 = unbounded; a "
                    "long-lived daemon should set one)",
                    "512");
    options.declare("retry-after-ms",
                    "backoff hint handed out under overload", "50");
    options.declare("max-cells", "cells one request may carry",
                    "4096");
    options.declare("max-instructions",
                    "per-cell instructions + warmup cap", "64000000");
    options.declare("help", "print usage", "", true);
    options.parse(argc, argv);
    if (options.getFlag("help")) {
        std::cout << options.usage();
        return 0;
    }

    ServeConfig config;
    config.port = std::uint16_t(options.getUint("port"));
    config.unixPath = options.get("unix");
    config.workers = unsigned(options.getUint("workers"));
    config.queueCapacity = options.getUint("queue");
    config.discipline =
        parseDispatchDiscipline(options.get("discipline"));
    config.storeBudgetBytes = options.getUint("store-mb") << 20;
    config.storeShards = options.getUint("store-shards");
    config.retryAfterMs =
        std::uint32_t(options.getUint("retry-after-ms"));
    config.maxCellsPerRequest = options.getUint("max-cells");
    config.cellInstructionCap = options.getUint("max-instructions");

    setGridCacheByteBudget(options.getUint("grid-cache-mb") << 20);

    // Route SIGINT/SIGTERM through sigwait on a dedicated thread:
    // unlike a signal handler, that thread may safely take locks and
    // notify the shutdown condvar. Every thread the server spawns
    // inherits this mask, so the signal can only land in sigwait.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    ServeServer server(config);
    std::string error;
    if (!server.start(error))
        wbsim_fatal("wbsim-serve failed to start: ", error);

    std::thread signalThread([&]() {
        int signal = 0;
        sigwait(&signals, &signal);
        server.requestShutdown();
    });

    if (!config.unixPath.empty())
        std::cout << "wbsim-serve listening on unix:"
                  << config.unixPath << std::endl;
    else
        std::cout << "wbsim-serve listening on 127.0.0.1:"
                  << server.port() << std::endl;

    server.waitForShutdownRequest();
    server.stop();
    // If shutdown came from a client, hand the sigwait thread the
    // signal it is still waiting for.
    pthread_kill(signalThread.native_handle(), SIGTERM);
    signalThread.join();
    std::cout << "wbsim-serve drained; final stats:\n"
              << server.statsJson();
    return 0;
}
